package workload

import (
	"strings"
	"testing"

	"specpersist/internal/core"
)

// tinyRC keeps unit-test runs fast: minimal scale, short preamble.
func tinyRC(v core.Variant) RunConfig {
	return RunConfig{Variant: v, Scale: 0.002, Seed: 7, OpOverhead: 50, MaxTraceOps: 60}
}

func TestTable1MatchesPaper(t *testing.T) {
	want := map[string][2]int{
		"GH": {2600000, 100000},
		"HM": {1500000, 100000},
		"LL": {500, 50000},
		"SS": {120000, 500000},
		"AT": {1000000, 50000},
		"BT": {1000000, 50000},
		"RT": {1500000, 50000},
	}
	benches := Table1()
	if len(benches) != 7 {
		t.Fatalf("Table1 has %d benchmarks", len(benches))
	}
	for _, b := range benches {
		w, ok := want[b.Name]
		if !ok {
			t.Errorf("unexpected benchmark %q", b.Name)
			continue
		}
		if b.InitOps != w[0] || b.SimOps != w[1] {
			t.Errorf("%s: ops %d/%d, want %d/%d", b.Name, b.InitOps, b.SimOps, w[0], w[1])
		}
	}
}

func TestFindBench(t *testing.T) {
	b, err := FindBench("RT")
	if err != nil || b.Name != "RT" {
		t.Fatalf("FindBench(RT) = %v, %v", b, err)
	}
	if _, err := FindBench("XX"); err == nil {
		t.Error("FindBench accepted unknown name")
	}
}

func TestRunAllBenchesAllVariants(t *testing.T) {
	for _, b := range Table1() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			for _, v := range core.Variants() {
				r, err := Run(b, tinyRC(v))
				if err != nil {
					t.Fatalf("%s/%s: %v", b.Name, v, err)
				}
				if r.Stats.Cycles == 0 || r.Stats.Committed == 0 {
					t.Fatalf("%s/%s: empty stats", b.Name, v)
				}
				if v == core.VariantSP && r.Stats.SpecEntries == 0 {
					t.Errorf("%s/SP never speculated", b.Name)
				}
				if v.Level() == 0 && r.Stats.Pcommits != 0 { // Base/Log
					t.Errorf("%s/%s executed pcommits", b.Name, v)
				}
			}
		})
	}
}

func TestVariantOrdering(t *testing.T) {
	// For a barrier-heavy benchmark: Base <= Log <= Log+P and
	// SP < Log+P+Sf (the point of the paper).
	b, _ := FindBench("LL")
	rc := func(v core.Variant) RunConfig {
		return RunConfig{Variant: v, Scale: 0.01, Seed: 3, OpOverhead: 400}
	}
	cycles := make(map[core.Variant]uint64)
	for _, v := range core.Variants() {
		cycles[v] = MustRun(b, rc(v)).Stats.Cycles
	}
	if cycles[core.VariantLog] < cycles[core.VariantBase] {
		t.Errorf("Log (%d) faster than Base (%d)", cycles[core.VariantLog], cycles[core.VariantBase])
	}
	if cycles[core.VariantLogPSf] <= cycles[core.VariantLogP] {
		t.Errorf("fences free: Log+P+Sf %d vs Log+P %d", cycles[core.VariantLogPSf], cycles[core.VariantLogP])
	}
	if cycles[core.VariantSP] >= cycles[core.VariantLogPSf] {
		t.Errorf("SP (%d) not faster than Log+P+Sf (%d)", cycles[core.VariantSP], cycles[core.VariantLogPSf])
	}
}

func TestSameSeedSameWork(t *testing.T) {
	// All variants perform the same functional operations: committed
	// instruction counts must be ordered Base <= Log <= Log+P <= Log+P+Sf
	// and Log+P+Sf == SP (same software).
	b, _ := FindBench("HM")
	committed := make(map[core.Variant]uint64)
	for _, v := range core.Variants() {
		committed[v] = MustRun(b, tinyRC(v)).Stats.Committed
	}
	if committed[core.VariantLogPSf] != committed[core.VariantSP] {
		t.Errorf("Log+P+Sf and SP instruction counts differ: %d vs %d",
			committed[core.VariantLogPSf], committed[core.VariantSP])
	}
	if !(committed[core.VariantBase] <= committed[core.VariantLog] &&
		committed[core.VariantLog] <= committed[core.VariantLogP] &&
		committed[core.VariantLogP] <= committed[core.VariantLogPSf]) {
		t.Errorf("instruction counts not monotone: %v", committed)
	}
}

func TestSSBSweepRuns(t *testing.T) {
	b, _ := FindBench("LL")
	for _, n := range []int{32, 256} {
		rc := tinyRC(core.VariantSP)
		rc.SSBEntries = n
		r := MustRun(b, rc)
		if r.Stats.SSBMaxUsed > n {
			t.Errorf("SSB used %d of %d", r.Stats.SSBMaxUsed, n)
		}
	}
}

func TestCheckpointOverride(t *testing.T) {
	b, _ := FindBench("LL")
	rc := tinyRC(core.VariantSP)
	rc.Checkpoints = 2
	r := MustRun(b, rc)
	if r.Stats.CheckpointsMaxUsed > 2 {
		t.Errorf("checkpoints used %d of 2", r.Stats.CheckpointsMaxUsed)
	}
}

func TestSuiteCachesRuns(t *testing.T) {
	s := NewSuite(0.002, 7)
	b, _ := FindBench("LL")
	r1 := s.Get(b, core.VariantBase)
	r2 := s.Get(b, core.VariantBase)
	if r1.Stats.Cycles != r2.Stats.Cycles {
		t.Error("suite did not cache")
	}
}

func TestAblationPointsComplete(t *testing.T) {
	pts := AblationPoints()
	if len(pts) < 6 {
		t.Fatalf("only %d ablation points", len(pts))
	}
	names := make(map[string]bool)
	for _, p := range pts {
		if names[p.Name] {
			t.Errorf("duplicate ablation %q", p.Name)
		}
		names[p.Name] = true
		if !p.SP.Enabled {
			t.Errorf("ablation %q has SP disabled", p.Name)
		}
	}
	for _, want := range []string{"SP256", "no-bloom", "no-collapse", "no-delay"} {
		if !names[want] {
			t.Errorf("missing ablation %q", want)
		}
	}
}

func TestSPOverrideApplies(t *testing.T) {
	b, _ := FindBench("LL")
	sp := AblationPoints()[3].SP // no-delay
	rc := tinyRC(core.VariantSP)
	rc.SPOverride = &sp
	r := MustRun(b, rc)
	if r.Stats.DelayedPMEMOps != 0 {
		t.Errorf("no-delay override still delayed %d PMEM ops", r.Stats.DelayedPMEMOps)
	}
}

func TestIncrementalBTRun(t *testing.T) {
	b, _ := FindBench("BT")
	rc := tinyRC(core.VariantLogPSf)
	rc.IncrementalBT = true
	inc := MustRun(b, rc)
	rc.IncrementalBT = false
	full := MustRun(b, rc)
	if inc.Stats.Pcommits <= full.Stats.Pcommits {
		t.Errorf("incremental pcommits %d not above full %d", inc.Stats.Pcommits, full.Stats.Pcommits)
	}
	if inc.Txn.Entries >= full.Txn.Entries {
		t.Errorf("incremental log entries %d not below full %d", inc.Txn.Entries, full.Txn.Entries)
	}
}

func TestTxnStatsInResult(t *testing.T) {
	b, _ := FindBench("RT")
	r := MustRun(b, tinyRC(core.VariantLogPSf))
	if r.Txn.Txns == 0 || r.Txn.Entries == 0 {
		t.Errorf("txn stats empty: %+v", r.Txn)
	}
	// Trees log much more than the header+node pair.
	if avg := float64(r.Txn.Entries) / float64(r.Txn.Txns); avg < 5 {
		t.Errorf("RT logs %.1f entries/txn, expected heavy full logging", avg)
	}
	base := MustRun(b, tinyRC(core.VariantBase))
	if base.Txn.Txns != 0 {
		t.Error("Base variant reported transactions")
	}
}

func TestStaticTables(t *testing.T) {
	if s := Table1Report().String(); !strings.Contains(s, "RT") {
		t.Error("Table 1 missing RT")
	}
	if s := Table2Report().String(); !strings.Contains(s, "ROB: 128") {
		t.Error("Table 2 missing ROB")
	}
	if s := Table3Report().String(); !strings.Contains(s, "1024") {
		t.Error("Table 3 missing 1024")
	}
}
