package workload

import (
	"fmt"

	"specpersist/internal/core"
	"specpersist/internal/cpu"
	"specpersist/internal/report"
	"specpersist/internal/sp"
)

// Suite runs the evaluation experiments and caches per-variant results so
// figures 8-10 share one set of simulations.
type Suite struct {
	Scale float64
	Seed  int64
	// cache[bench][variant]
	results map[string]map[core.Variant]Result
}

// NewSuite returns an experiment suite at the given scale (0 = default).
func NewSuite(scale float64, seed int64) *Suite {
	return &Suite{Scale: scale, Seed: seed, results: make(map[string]map[core.Variant]Result)}
}

// Get runs (or returns the cached) benchmark x variant simulation.
func (s *Suite) Get(b Bench, v core.Variant) Result {
	if m, ok := s.results[b.Name]; ok {
		if r, ok := m[v]; ok {
			return r
		}
	} else {
		s.results[b.Name] = make(map[core.Variant]Result)
	}
	r := MustRun(b, RunConfig{Variant: v, Scale: s.Scale, Seed: s.Seed})
	s.results[b.Name][v] = r
	return r
}

// Table1Report renders the benchmark table.
func Table1Report() *report.Table {
	t := &report.Table{
		Title:   "Table 1: benchmarks (paper-scale InitOps/SimOps)",
		Columns: []string{"Benchmark", "Description", "#InitOps", "#SimOps"},
	}
	for _, b := range Table1() {
		t.AddRow(b.Name, b.Desc, fmt.Sprint(b.InitOps), fmt.Sprint(b.SimOps))
	}
	return t
}

// Table2Report renders the baseline system configuration.
func Table2Report() *report.Table {
	t := &report.Table{
		Title:   "Table 2: baseline system configuration",
		Columns: []string{"Component", "Configuration"},
	}
	c := cpu.DefaultConfig()
	t.AddRow("Processor", fmt.Sprintf("OOO, 2.1GHz, %d-wide issue/retire", c.IssueWidth))
	t.AddRow("", fmt.Sprintf("ROB: %d, fetchQ/issueQ/LSQ: %d/%d/%d", c.ROB, c.FetchQ, c.IssueQ, c.LSQ))
	t.AddRow("L1D", "32KB, 8-way, 64B block, 2 cycles")
	t.AddRow("L2", "256KB, 8-way, 64B block, 11 cycles")
	t.AddRow("L3", "2MB, 16-way, 64B block, 20 cycles")
	t.AddRow("SSB", "variable size and latency (Table 3)")
	t.AddRow("Checkpoint Buffer", fmt.Sprintf("%d entries", cpu.DefaultSPConfig().Checkpoints))
	t.AddRow("NVMM", "50ns read, 150ns write (105/315 cycles)")
	return t
}

// Table3Report renders the SSB size/latency table.
func Table3Report() *report.Table {
	t := &report.Table{
		Title:   "Table 3: SSB configurations and parameters",
		Columns: []string{"Num entries", "Latency (cycles)"},
	}
	for _, n := range sp.SSBSizes() {
		t.AddRow(fmt.Sprint(n), fmt.Sprint(sp.SSBLatency(n)))
	}
	return t
}

// Fig8 reproduces Figure 8: execution-time overheads of Log, Log+P,
// Log+P+Sf and SP256, normalized to the non-persistent baseline.
func (s *Suite) Fig8() *report.Table {
	t := &report.Table{
		Title:   "Figure 8: execution time overhead vs Base",
		Columns: []string{"Bench", "Log", "Log+P", "Log+P+Sf", "SP256"},
	}
	variants := []core.Variant{core.VariantLog, core.VariantLogP, core.VariantLogPSf, core.VariantSP}
	ratios := make(map[core.Variant][]float64)
	for _, b := range Table1() {
		base := s.Get(b, core.VariantBase).Stats.Cycles
		row := []string{b.Name}
		for _, v := range variants {
			c := s.Get(b, v).Stats.Cycles
			row = append(row, report.Pct(report.Overhead(c, base)))
			ratios[v] = append(ratios[v], float64(c)/float64(base))
		}
		t.AddRow(row...)
	}
	gm := []string{"gmean"}
	for _, v := range variants {
		gm = append(gm, report.Pct(report.GeoMeanOverhead(ratios[v])))
	}
	t.AddRow(gm...)

	// The paper's headline: SP's overhead over Log+P vs Log+P+Sf's.
	var spOverP, sfOverP []float64
	for _, b := range Table1() {
		p := float64(s.Get(b, core.VariantLogP).Stats.Cycles)
		spOverP = append(spOverP, float64(s.Get(b, core.VariantSP).Stats.Cycles)/p)
		sfOverP = append(sfOverP, float64(s.Get(b, core.VariantLogPSf).Stats.Cycles)/p)
	}
	t.AddNote("overhead over Log+P (fence cost): Log+P+Sf %s, SP %s (paper: 20.3%% -> 3.6%%)",
		report.Pct(report.GeoMeanOverhead(sfOverP)), report.Pct(report.GeoMeanOverhead(spOverP)))
	return t
}

// Fig9 reproduces Figure 9: committed-instruction ratio to baseline.
func (s *Suite) Fig9() *report.Table {
	t := &report.Table{
		Title:   "Figure 9: committed instructions / Base",
		Columns: []string{"Bench", "Log", "Log+P", "Log+P+Sf"},
	}
	for _, b := range Table1() {
		base := s.Get(b, core.VariantBase).Stats.Committed
		row := []string{b.Name}
		for _, v := range []core.Variant{core.VariantLog, core.VariantLogP, core.VariantLogPSf} {
			row = append(row, report.Ratio(float64(s.Get(b, v).Stats.Committed)/float64(base)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig10 reproduces Figure 10: fetch-queue stall cycles / baseline cycles.
func (s *Suite) Fig10() *report.Table {
	t := &report.Table{
		Title:   "Figure 10: fetch queue stall cycles / Base cycles",
		Columns: []string{"Bench", "Log", "Log+P", "Log+P+Sf", "SP256"},
	}
	for _, b := range Table1() {
		base := s.Get(b, core.VariantBase).Stats.Cycles
		row := []string{b.Name}
		for _, v := range []core.Variant{core.VariantLog, core.VariantLogP, core.VariantLogPSf, core.VariantSP} {
			row = append(row, report.Ratio(float64(s.Get(b, v).Stats.FetchQStallCycles)/float64(base)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig11 reproduces Figure 11: maximum in-flight pcommits, measured on
// Log+P (no fences), motivating the 4-entry checkpoint buffer.
func (s *Suite) Fig11() *report.Table {
	t := &report.Table{
		Title:   "Figure 11: maximum number of in-flight pcommits (Log+P)",
		Columns: []string{"Bench", "Max concurrent pcommits"},
	}
	for _, b := range Table1() {
		r := s.Get(b, core.VariantLogP)
		t.AddRow(b.Name, fmt.Sprint(r.Stats.MaxConcurrentPcommits))
	}
	return t
}

// Fig12 reproduces Figure 12: average stores (incl. clwb/clflush) executed
// while a pcommit is outstanding, measured on Log+P.
func (s *Suite) Fig12() *report.Table {
	t := &report.Table{
		Title:   "Figure 12: avg speculative-window stores per outstanding pcommit (Log+P)",
		Columns: []string{"Bench", "Stores/pcommit"},
	}
	for _, b := range Table1() {
		r := s.Get(b, core.VariantLogP)
		t.AddRow(b.Name, fmt.Sprintf("%.1f", r.Stats.AvgStoresPerPcommit()))
	}
	return t
}

// Fig13 reproduces Figure 13: SP overhead vs baseline across SSB sizes.
func (s *Suite) Fig13() *report.Table {
	sizes := sp.SSBSizes()
	cols := []string{"Bench"}
	for _, n := range sizes {
		cols = append(cols, fmt.Sprintf("SP%d", n))
	}
	t := &report.Table{Title: "Figure 13: SP overhead vs Base across SSB sizes", Columns: cols}
	ratios := make([][]float64, len(sizes))
	for _, b := range Table1() {
		base := s.Get(b, core.VariantBase).Stats.Cycles
		row := []string{b.Name}
		for i, n := range sizes {
			r := MustRun(b, RunConfig{Variant: core.VariantSP, Scale: s.Scale, Seed: s.Seed, SSBEntries: n})
			row = append(row, report.Pct(report.Overhead(r.Stats.Cycles, base)))
			ratios[i] = append(ratios[i], float64(r.Stats.Cycles)/float64(base))
		}
		t.AddRow(row...)
	}
	gm := []string{"gmean"}
	for i := range sizes {
		gm = append(gm, report.Pct(report.GeoMeanOverhead(ratios[i])))
	}
	t.AddRow(gm...)
	return t
}

// StallBreakdown decomposes retirement stalls by cause for Log+P+Sf and
// SP256 — an extension of the Figure 10 analysis showing where the fence
// cost goes and what residual stalls SP leaves.
func (s *Suite) StallBreakdown() *report.Table {
	t := &report.Table{
		Title: "Stall breakdown: complete-but-blocked ROB-head cycles / Base cycles",
		Columns: []string{"Bench", "Variant", "fence", "checkpoint", "ssb-full",
			"storebuf", "flush-order"},
	}
	for _, b := range Table1() {
		base := float64(s.Get(b, core.VariantBase).Stats.Cycles)
		for _, v := range []core.Variant{core.VariantLogPSf, core.VariantSP} {
			st := s.Get(b, v).Stats
			t.AddRow(b.Name, v.String(),
				report.Ratio(float64(st.StallFenceCycles)/base),
				report.Ratio(float64(st.StallCheckpointCycles)/base),
				report.Ratio(float64(st.StallSSBFullCycles)/base),
				report.Ratio(float64(st.StallStoreBufCycles)/base),
				report.Ratio(float64(st.StallFlushOrderCycles)/base))
		}
	}
	return t
}

// LogFootprint reports the write-ahead-logging volume per benchmark — the
// mechanism behind Figure 8's Log bars: trees with full logging write an
// order of magnitude more undo entries per operation than the flat
// structures.
func (s *Suite) LogFootprint() *report.Table {
	t := &report.Table{
		Title:   "Undo-log footprint (Log+P+Sf): line entries per transaction",
		Columns: []string{"Bench", "Txns", "Entries/txn", "Max entries"},
	}
	for _, b := range Table1() {
		r := s.Get(b, core.VariantLogPSf)
		avg := 0.0
		if r.Txn.Txns > 0 {
			avg = float64(r.Txn.Entries) / float64(r.Txn.Txns)
		}
		t.AddRow(b.Name, fmt.Sprint(r.Txn.Txns), fmt.Sprintf("%.1f", avg), fmt.Sprint(r.Txn.MaxEntries))
	}
	return t
}

// Fig14 reproduces Figure 14: Bloom-filter false-positive rates under
// SP256.
func (s *Suite) Fig14() *report.Table {
	t := &report.Table{
		Title:   "Figure 14: Bloom filter false positive rate (SP256)",
		Columns: []string{"Bench", "FP rate", "Queries", "False positives"},
	}
	for _, b := range Table1() {
		r := s.Get(b, core.VariantSP)
		t.AddRow(b.Name,
			fmt.Sprintf("%.4f", r.Stats.BloomFalsePositiveRate()),
			fmt.Sprint(r.Stats.BloomQueries),
			fmt.Sprint(r.Stats.BloomFalsePositives))
	}
	return t
}
