package workload

import (
	"fmt"

	"specpersist/internal/core"
	"specpersist/internal/cpu"
	"specpersist/internal/obs"
	"specpersist/internal/report"
	"specpersist/internal/sp"
)

// Suite assembles the evaluation tables and figures from simulation
// results. Each figure first declares the full grid of jobs it needs,
// executes the missing ones through the Runner as a single batch — so a
// parallel runner overlaps them — and then reads every cell from the
// in-memory result map. Results are shared across figures (8–10 reuse one
// set of simulations), and the assembly order is fixed, so the rendered
// output is byte-identical no matter how the runner schedules the work.
type Suite struct {
	Scale float64
	Seed  int64
	// Runner executes job batches; nil means SerialRunner. cmd/figures
	// installs a sweep.Engine here for parallelism and disk caching.
	Runner Runner
	// results maps job fingerprints to completed results.
	results map[string]Result
}

// NewSuite returns an experiment suite at the given scale (0 = default).
func NewSuite(scale float64, seed int64) *Suite {
	return &Suite{Scale: scale, Seed: seed, results: make(map[string]Result)}
}

func (s *Suite) runner() Runner {
	if s.Runner == nil {
		return SerialRunner{}
	}
	return s.Runner
}

// prime runs every job not yet in the result map as one batch.
func (s *Suite) prime(jobs []Job) {
	var missing []Job
	batched := make(map[string]bool)
	for _, j := range jobs {
		fp := j.Fingerprint()
		if _, ok := s.results[fp]; ok || batched[fp] {
			continue
		}
		batched[fp] = true
		missing = append(missing, j)
	}
	if len(missing) == 0 {
		return
	}
	rs, err := s.runner().RunJobs(missing)
	if err != nil {
		panic(err) // experiment drivers treat a failed run as fatal (cf. MustRun)
	}
	for i, j := range missing {
		s.results[j.Fingerprint()] = rs[i]
	}
}

// get returns the job's result, running it on demand if no batch primed
// it yet.
func (s *Suite) get(j Job) Result {
	fp := j.Fingerprint()
	if r, ok := s.results[fp]; ok {
		return r
	}
	s.prime([]Job{j})
	return s.results[fp]
}

// job builds the suite's standard job for one benchmark and variant.
func (s *Suite) job(b Bench, v core.Variant) Job {
	return NewJob(b, v, s.Scale, s.Seed)
}

// grid lists the suite jobs for every Table 1 benchmark crossed with the
// given variants.
func (s *Suite) grid(variants ...core.Variant) []Job {
	var jobs []Job
	for _, b := range Table1() {
		for _, v := range variants {
			jobs = append(jobs, s.job(b, v))
		}
	}
	return jobs
}

// Get runs (or returns the cached) benchmark x variant simulation.
func (s *Suite) Get(b Bench, v core.Variant) Result {
	return s.get(s.job(b, v))
}

// Table1Report renders the benchmark table.
func Table1Report() *report.Table {
	t := &report.Table{
		Title:   "Table 1: benchmarks (paper-scale InitOps/SimOps)",
		Columns: []string{"Benchmark", "Description", "#InitOps", "#SimOps"},
	}
	for _, b := range Table1() {
		t.AddRow(b.Name, b.Desc, fmt.Sprint(b.InitOps), fmt.Sprint(b.SimOps))
	}
	return t
}

// Table2Report renders the baseline system configuration.
func Table2Report() *report.Table {
	t := &report.Table{
		Title:   "Table 2: baseline system configuration",
		Columns: []string{"Component", "Configuration"},
	}
	c := cpu.DefaultConfig()
	t.AddRow("Processor", fmt.Sprintf("OOO, 2.1GHz, %d-wide issue/retire", c.IssueWidth))
	t.AddRow("", fmt.Sprintf("ROB: %d, fetchQ/issueQ/LSQ: %d/%d/%d", c.ROB, c.FetchQ, c.IssueQ, c.LSQ))
	t.AddRow("L1D", "32KB, 8-way, 64B block, 2 cycles")
	t.AddRow("L2", "256KB, 8-way, 64B block, 11 cycles")
	t.AddRow("L3", "2MB, 16-way, 64B block, 20 cycles")
	t.AddRow("SSB", "variable size and latency (Table 3)")
	t.AddRow("Checkpoint Buffer", fmt.Sprintf("%d entries", cpu.DefaultSPConfig().Checkpoints))
	t.AddRow("NVMM", "50ns read, 150ns write (105/315 cycles)")
	return t
}

// Table3Report renders the SSB size/latency table.
func Table3Report() *report.Table {
	t := &report.Table{
		Title:   "Table 3: SSB configurations and parameters",
		Columns: []string{"Num entries", "Latency (cycles)"},
	}
	for _, n := range sp.SSBSizes() {
		t.AddRow(fmt.Sprint(n), fmt.Sprint(sp.SSBLatency(n)))
	}
	return t
}

// Fig8 reproduces Figure 8: execution-time overheads of Log, Log+P,
// Log+P+Sf and SP256, normalized to the non-persistent baseline.
func (s *Suite) Fig8() *report.Table {
	s.prime(s.grid(core.Variants()...))
	t := &report.Table{
		Title:   "Figure 8: execution time overhead vs Base",
		Columns: []string{"Bench", "Log", "Log+P", "Log+P+Sf", "SP256"},
	}
	variants := []core.Variant{core.VariantLog, core.VariantLogP, core.VariantLogPSf, core.VariantSP}
	ratios := make(map[core.Variant][]float64)
	for _, b := range Table1() {
		base := s.Get(b, core.VariantBase).Stats.Cycles
		row := []string{b.Name}
		for _, v := range variants {
			c := s.Get(b, v).Stats.Cycles
			row = append(row, report.Pct(report.Overhead(c, base)))
			ratios[v] = append(ratios[v], float64(c)/float64(base))
		}
		t.AddRow(row...)
	}
	gm := []string{"gmean"}
	for _, v := range variants {
		gm = append(gm, report.Pct(report.GeoMeanOverhead(ratios[v])))
	}
	t.AddRow(gm...)

	// The paper's headline: SP's overhead over Log+P vs Log+P+Sf's.
	var spOverP, sfOverP []float64
	for _, b := range Table1() {
		p := float64(s.Get(b, core.VariantLogP).Stats.Cycles)
		spOverP = append(spOverP, float64(s.Get(b, core.VariantSP).Stats.Cycles)/p)
		sfOverP = append(sfOverP, float64(s.Get(b, core.VariantLogPSf).Stats.Cycles)/p)
	}
	t.AddNote("overhead over Log+P (fence cost): Log+P+Sf %s, SP %s (paper: 20.3%% -> 3.6%%)",
		report.Pct(report.GeoMeanOverhead(sfOverP)), report.Pct(report.GeoMeanOverhead(spOverP)))
	return t
}

// Fig9 reproduces Figure 9: committed-instruction ratio to baseline.
func (s *Suite) Fig9() *report.Table {
	s.prime(s.grid(core.VariantBase, core.VariantLog, core.VariantLogP, core.VariantLogPSf))
	t := &report.Table{
		Title:   "Figure 9: committed instructions / Base",
		Columns: []string{"Bench", "Log", "Log+P", "Log+P+Sf"},
	}
	for _, b := range Table1() {
		base := s.Get(b, core.VariantBase).Stats.Committed
		row := []string{b.Name}
		for _, v := range []core.Variant{core.VariantLog, core.VariantLogP, core.VariantLogPSf} {
			row = append(row, report.Ratio(float64(s.Get(b, v).Stats.Committed)/float64(base)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig10 reproduces Figure 10: fetch-queue stall cycles / baseline cycles.
func (s *Suite) Fig10() *report.Table {
	s.prime(s.grid(core.Variants()...))
	t := &report.Table{
		Title:   "Figure 10: fetch queue stall cycles / Base cycles",
		Columns: []string{"Bench", "Log", "Log+P", "Log+P+Sf", "SP256"},
	}
	for _, b := range Table1() {
		base := s.Get(b, core.VariantBase).Stats.Cycles
		row := []string{b.Name}
		for _, v := range []core.Variant{core.VariantLog, core.VariantLogP, core.VariantLogPSf, core.VariantSP} {
			row = append(row, report.Ratio(float64(s.Get(b, v).Stats.FetchQStallCycles)/float64(base)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig11 reproduces Figure 11: maximum in-flight pcommits, measured on
// Log+P (no fences), motivating the 4-entry checkpoint buffer.
func (s *Suite) Fig11() *report.Table {
	s.prime(s.grid(core.VariantLogP))
	t := &report.Table{
		Title:   "Figure 11: maximum number of in-flight pcommits (Log+P)",
		Columns: []string{"Bench", "Max concurrent pcommits"},
	}
	for _, b := range Table1() {
		r := s.Get(b, core.VariantLogP)
		t.AddRow(b.Name, fmt.Sprint(r.Stats.MaxConcurrentPcommits))
	}
	return t
}

// Fig12 reproduces Figure 12: average stores (incl. clwb/clflush) executed
// while a pcommit is outstanding, measured on Log+P.
func (s *Suite) Fig12() *report.Table {
	s.prime(s.grid(core.VariantLogP))
	t := &report.Table{
		Title:   "Figure 12: avg speculative-window stores per outstanding pcommit (Log+P)",
		Columns: []string{"Bench", "Stores/pcommit"},
	}
	for _, b := range Table1() {
		r := s.Get(b, core.VariantLogP)
		t.AddRow(b.Name, fmt.Sprintf("%.1f", r.Stats.AvgStoresPerPcommit()))
	}
	return t
}

// ssbJob is the Figure 13 job: SP at a specific SSB size.
func (s *Suite) ssbJob(b Bench, entries int) Job {
	j := s.job(b, core.VariantSP)
	j.Config.SSBEntries = entries
	return j
}

// Fig13 reproduces Figure 13: SP overhead vs baseline across SSB sizes.
func (s *Suite) Fig13() *report.Table {
	sizes := sp.SSBSizes()
	jobs := s.grid(core.VariantBase)
	for _, b := range Table1() {
		for _, n := range sizes {
			jobs = append(jobs, s.ssbJob(b, n))
		}
	}
	s.prime(jobs)

	cols := []string{"Bench"}
	for _, n := range sizes {
		cols = append(cols, fmt.Sprintf("SP%d", n))
	}
	t := &report.Table{Title: "Figure 13: SP overhead vs Base across SSB sizes", Columns: cols}
	ratios := make([][]float64, len(sizes))
	for _, b := range Table1() {
		base := s.Get(b, core.VariantBase).Stats.Cycles
		row := []string{b.Name}
		for i, n := range sizes {
			r := s.get(s.ssbJob(b, n))
			row = append(row, report.Pct(report.Overhead(r.Stats.Cycles, base)))
			ratios[i] = append(ratios[i], float64(r.Stats.Cycles)/float64(base))
		}
		t.AddRow(row...)
	}
	gm := []string{"gmean"}
	for i := range sizes {
		gm = append(gm, report.Pct(report.GeoMeanOverhead(ratios[i])))
	}
	t.AddRow(gm...)
	return t
}

// StallBreakdown decomposes retirement stalls by cause for Log+P+Sf and
// SP256 — an extension of the Figure 10 analysis showing where the fence
// cost goes and what residual stalls SP leaves. It reads the unified
// metrics snapshot, so its columns are the canonical obs stall keys.
func (s *Suite) StallBreakdown() *report.Table {
	s.prime(s.grid(core.VariantBase, core.VariantLogPSf, core.VariantSP))
	t := &report.Table{
		Title: "Stall breakdown: complete-but-blocked ROB-head cycles / Base cycles",
		Columns: []string{"Bench", "Variant", "fence", "checkpoint", "ssb-full",
			"storebuf", "flush-order"},
	}
	keys := []string{obs.KeyStallFence, obs.KeyStallCheckpoint, obs.KeyStallSSBFull,
		obs.KeyStallStoreBuf, obs.KeyStallFlushOrder}
	for _, b := range Table1() {
		base := float64(s.Get(b, core.VariantBase).Metrics[obs.KeyCycles])
		for _, v := range []core.Variant{core.VariantLogPSf, core.VariantSP} {
			m := s.Get(b, v).Metrics
			row := []string{b.Name, v.String()}
			for _, k := range keys {
				row = append(row, report.Ratio(float64(m[k])/base))
			}
			t.AddRow(row...)
		}
	}
	return t
}

// StallAttribution renders the "where did the cycles go" report for one
// benchmark under one variant: every stall cause as a fraction of that
// run's own cycles (obs.StallReport semantics).
func (s *Suite) StallAttribution(b Bench, v core.Variant) *report.Table {
	r := s.Get(b, v)
	t := &report.Table{
		Title:   fmt.Sprintf("Stall attribution: %s under %s", b.Name, v),
		Columns: []string{"Cause", "Cycles", "Fraction"},
	}
	for _, line := range obs.StallReport(r.Metrics) {
		t.AddRow(line.Cause, fmt.Sprint(line.Cycles), fmt.Sprintf("%.1f%%", line.Frac*100))
	}
	return t
}

// LogFootprint reports the write-ahead-logging volume per benchmark — the
// mechanism behind Figure 8's Log bars: trees with full logging write an
// order of magnitude more undo entries per operation than the flat
// structures.
func (s *Suite) LogFootprint() *report.Table {
	s.prime(s.grid(core.VariantLogPSf))
	t := &report.Table{
		Title:   "Undo-log footprint (Log+P+Sf): line entries per transaction",
		Columns: []string{"Bench", "Txns", "Entries/txn", "Max entries"},
	}
	for _, b := range Table1() {
		r := s.Get(b, core.VariantLogPSf)
		avg := 0.0
		if r.Txn.Txns > 0 {
			avg = float64(r.Txn.Entries) / float64(r.Txn.Txns)
		}
		t.AddRow(b.Name, fmt.Sprint(r.Txn.Txns), fmt.Sprintf("%.1f", avg), fmt.Sprint(r.Txn.MaxEntries))
	}
	return t
}

// Fig14 reproduces Figure 14: Bloom-filter false-positive rates under
// SP256.
func (s *Suite) Fig14() *report.Table {
	s.prime(s.grid(core.VariantSP))
	t := &report.Table{
		Title:   "Figure 14: Bloom filter false positive rate (SP256)",
		Columns: []string{"Bench", "FP rate", "Queries", "False positives"},
	}
	for _, b := range Table1() {
		r := s.Get(b, core.VariantSP)
		t.AddRow(b.Name,
			fmt.Sprintf("%.4f", r.Stats.BloomFalsePositiveRate()),
			fmt.Sprint(r.Stats.BloomQueries),
			fmt.Sprint(r.Stats.BloomFalsePositives))
	}
	return t
}
