package report

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders a horizontal ASCII bar chart — the figures in the paper
// are bar charts, and cmd/figures can emit them directly next to the
// tables. Values may be negative (bars extend left of the axis). unit is
// appended to each value label.
type BarChart struct {
	Title string
	Width int // bar area width in characters (0 = 50)
	bars  []bar
}

type bar struct {
	label string
	value float64
	unit  string
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64, unit string) {
	c.bars = append(c.bars, bar{label: label, value: value, unit: unit})
}

// String renders the chart.
func (c *BarChart) String() string {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	maxAbs := 0.0
	labelW := 0
	for _, b := range c.bars {
		if v := math.Abs(b.value); v > maxAbs {
			maxAbs = v
		}
		if len(b.label) > labelW {
			labelW = len(b.label)
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	for _, b := range c.bars {
		n := int(math.Round(math.Abs(b.value) / maxAbs * float64(width)))
		if n == 0 && b.value != 0 {
			n = 1
		}
		sign := ""
		if b.value < 0 {
			sign = "-"
		}
		fmt.Fprintf(&sb, "%-*s |%s%s %.4g%s\n", labelW, b.label,
			sign, strings.Repeat("█", n), b.value, b.unit)
	}
	return sb.String()
}

// ChartFromTable builds a bar chart from one numeric column of a table
// (percent signs and '+' prefixes are tolerated); rows whose cell does not
// parse are skipped.
func ChartFromTable(t *Table, col int, unit string) *BarChart {
	c := &BarChart{Title: t.Title}
	if col < 0 || col >= len(t.Columns) {
		return c
	}
	c.Title = fmt.Sprintf("%s — %s", t.Title, t.Columns[col])
	for _, row := range t.Rows {
		if col >= len(row) {
			continue
		}
		cell := strings.TrimSuffix(strings.TrimPrefix(row[col], "+"), "%")
		var v float64
		if _, err := fmt.Sscanf(cell, "%g", &v); err != nil {
			continue
		}
		c.Add(row[0], v, unit)
	}
	return c
}
