package report

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestOverhead(t *testing.T) {
	if got := Overhead(150, 100); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Overhead = %v", got)
	}
	if got := Overhead(100, 0); got != 0 {
		t.Errorf("Overhead with zero base = %v", got)
	}
}

func TestGeoMeanOverhead(t *testing.T) {
	// Geometric mean of {2, 8} is 4 -> overhead 3.
	if got := GeoMeanOverhead([]float64{2, 8}); math.Abs(got-3) > 1e-9 {
		t.Errorf("GeoMeanOverhead = %v, want 3", got)
	}
	if got := GeoMeanOverhead(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	// Identity: single ratio r -> r-1.
	f := func(x uint16) bool {
		r := 1 + float64(x)/1000
		return math.Abs(GeoMeanOverhead([]float64{r})-(r-1)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	GeoMeanOverhead([]float64{1, 0})
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"A", "LongColumn"}}
	tb.AddRow("x", "1")
	tb.AddRow("longer", "2")
	tb.AddNote("note %d", 7)
	s := tb.String()
	for _, want := range []string{"T\n", "A", "LongColumn", "longer", "note 7", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Title, header, rule, 2 rows, note.
	if len(lines) != 6 {
		t.Errorf("table has %d lines:\n%s", len(lines), s)
	}
}

func TestCSV(t *testing.T) {
	tb := &Table{Columns: []string{"A", "B"}}
	tb.AddRow("x,y", `quote"d`)
	tb.AddRow("plain", "2")
	tb.AddNote("n")
	got := tb.CSV()
	want := "A,B\n\"x,y\",\"quote\"\"d\"\nplain,2\n# n\n"
	if got != want {
		t.Errorf("CSV:\n%q\nwant\n%q", got, want)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.123) != "+12.3%" {
		t.Errorf("Pct = %q", Pct(0.123))
	}
	if Pct(-0.05) != "-5.0%" {
		t.Errorf("Pct = %q", Pct(-0.05))
	}
	if Ratio(1.5) != "1.500" {
		t.Errorf("Ratio = %q", Ratio(1.5))
	}
}
