// Package report renders the paper's tables and figures as text and
// provides the summary statistics used in the evaluation (geometric-mean
// overheads, normalized ratios).
package report

import (
	"fmt"
	"math"
	"strings"
)

// Overhead converts a cycles ratio into the paper's "execution time
// overhead": cycles/base - 1.
func Overhead(cycles, base uint64) float64 {
	if base == 0 {
		return 0
	}
	return float64(cycles)/float64(base) - 1
}

// GeoMeanOverhead computes the paper's summary metric (§6.1): the geometric
// mean of slowdown ratios, minus one. Each ratio must be positive.
func GeoMeanOverhead(ratios []float64) float64 {
	if len(ratios) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range ratios {
		if r <= 0 {
			panic(fmt.Sprintf("report: non-positive ratio %v", r))
		}
		sum += math.Log(r)
	}
	return math.Exp(sum/float64(len(ratios))) - 1
}

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := len(t.Columns) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-style CSV (header row first; notes
// become trailing comment lines prefixed with '#'). Machine-readable
// output for plotting the figures.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// Pct formats a fraction as a signed percentage.
func Pct(f float64) string { return fmt.Sprintf("%+.1f%%", f*100) }

// Ratio formats a normalized ratio.
func Ratio(f float64) string { return fmt.Sprintf("%.3f", f) }
