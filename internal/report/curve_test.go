package report

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestCurveGolden pins the exact rendering of the scatter charts the
// service figures emit: a log-y throughput-latency curve with several
// series and a linear CDF. Regenerate with
//
//	go test ./internal/report -run Curve -update
func TestCurveGolden(t *testing.T) {
	var buf bytes.Buffer

	tail := &Curve{
		Title:  "p99 latency vs offered load (example)",
		XLabel: "offered load (req/Mcycle)",
		YLabel: "p99 (cycles)",
		LogY:   true,
		Width:  48,
		Height: 10,
	}
	tail.AddSeries("Log+P", []Point{{100, 600}, {300, 1400}, {500, 2200}, {700, 2400}})
	tail.AddSeries("Log+P+Sf", []Point{{100, 4300}, {300, 6400}, {500, 9000}, {700, 19500}})
	tail.AddSeries("SP", []Point{{100, 4200}, {300, 6400}, {500, 7900}, {700, 12500}})
	buf.WriteString(tail.String())
	buf.WriteString("\n")

	cdf := &Curve{
		Title:  "latency CDF (example)",
		XLabel: "latency (cycles)",
		YLabel: "fraction",
		Width:  48,
		Height: 10,
	}
	cdf.AddSeries("SP", CDF([]float64{100, 200, 200, 400, 800, 1600, 1600, 3200}))
	buf.WriteString(cdf.String())

	golden := filepath.Join("testdata", "curves.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("curve rendering diverged from %s;\nrerun with -update if the change is intended\ngot:\n%s", golden, buf.Bytes())
	}
}

func TestCurveMarkersAndLegend(t *testing.T) {
	c := &Curve{Width: 20, Height: 5}
	c.AddSeries("a", []Point{{0, 0}, {1, 1}})
	c.AddSeries("b", []Point{{0, 1}, {1, 0}})
	out := c.String()
	for _, want := range []string{"  * a\n", "  o b\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("legend line %q missing from:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("series markers missing from plot:\n%s", out)
	}
}

func TestCurveEmpty(t *testing.T) {
	c := &Curve{Title: "nothing"}
	c.AddSeries("empty", nil)
	out := c.String()
	if !strings.HasPrefix(out, "nothing\n") || !strings.Contains(out, "empty") {
		t.Errorf("empty chart should render title and legend only, got:\n%s", out)
	}
	if strings.Contains(out, "+---") {
		t.Errorf("empty chart should not render axes, got:\n%s", out)
	}
}

func TestCurveLogYClampsNonPositive(t *testing.T) {
	c := &Curve{LogY: true, Width: 10, Height: 4}
	c.AddSeries("s", []Point{{0, 0}, {1, 100}})
	out := c.String() // must not panic or emit NaN
	if strings.Contains(out, "NaN") {
		t.Errorf("log-y chart rendered NaN:\n%s", out)
	}
}

func TestCDF(t *testing.T) {
	if got := CDF(nil); got != nil {
		t.Fatalf("CDF(nil) = %v, want nil", got)
	}
	in := []float64{3, 1, 2, 2}
	pts := CDF(in)
	want := []Point{{1, 0.25}, {2, 0.75}, {3, 1}}
	if len(pts) != len(want) {
		t.Fatalf("CDF points = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i].X != want[i].X || math.Abs(pts[i].Y-want[i].Y) > 1e-12 {
			t.Errorf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
	if in[0] != 3 {
		t.Error("CDF mutated its input")
	}
}
