package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a curve.
type Point struct {
	X, Y float64
}

// Curve renders one or more (x, y) series as an ASCII scatter chart — the
// service layer's throughput–latency curves and latency CDFs, printable
// next to the tables cmd/figures already emits. Each series draws with its
// own marker; where series overlap, the later one wins the cell. Axes are
// linear by default; LogY switches the y axis to log10 for tail-latency
// curves whose interesting structure spans orders of magnitude.
type Curve struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area width in characters (0 = 60)
	Height int // plot area height in rows (0 = 16)
	LogY   bool

	series []curveSeries
}

type curveSeries struct {
	name string
	pts  []Point
}

// curveMarkers are assigned to series in AddSeries order, wrapping around.
var curveMarkers = []rune{'*', 'o', '+', 'x', '#', '@'}

// AddSeries appends one named series. Points need not be sorted.
func (c *Curve) AddSeries(name string, pts []Point) {
	c.series = append(c.series, curveSeries{name: name, pts: append([]Point(nil), pts...)})
}

// yTransform maps a y value into plotting space.
func (c *Curve) yTransform(y float64) float64 {
	if !c.LogY {
		return y
	}
	if y <= 0 {
		// Log-scale charts clamp non-positive values to the smallest
		// representable mark rather than dropping the point.
		return 0
	}
	return math.Log10(y)
}

// String renders the chart: plot area, x/y extents, and a legend line per
// series. An empty chart renders just the title and legend.
func (c *Curve) String() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for _, p := range s.pts {
			y := c.yTransform(p.Y)
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	if math.IsInf(minX, 1) {
		c.legend(&sb)
		return sb.String()
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}

	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = make([]rune, w)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	for si, s := range c.series {
		mark := curveMarkers[si%len(curveMarkers)]
		for _, p := range s.pts {
			x := int(math.Round((p.X - minX) / (maxX - minX) * float64(w-1)))
			y := int(math.Round((c.yTransform(p.Y) - minY) / (maxY - minY) * float64(h-1)))
			grid[h-1-y][x] = mark
		}
	}

	yLo, yHi := minY, maxY
	if c.LogY {
		yLo, yHi = math.Pow(10, minY), math.Pow(10, maxY)
	}
	yUnit := ""
	if c.LogY {
		yUnit = " (log)"
	}
	fmt.Fprintf(&sb, "%s%s\n", c.YLabel, yUnit)
	for i, row := range grid {
		edge := "|"
		switch i {
		case 0:
			edge = fmt.Sprintf("%.4g |", yHi)
		case h - 1:
			edge = fmt.Sprintf("%.4g |", yLo)
		}
		fmt.Fprintf(&sb, "%14s%s\n", edge, strings.TrimRight(string(row), " "))
	}
	fmt.Fprintf(&sb, "%14s%s\n", "+", strings.Repeat("-", w))
	fmt.Fprintf(&sb, "%14s%-*.4g%.4g  %s\n", "", w-6, minX, maxX, c.XLabel)
	c.legend(&sb)
	return sb.String()
}

func (c *Curve) legend(sb *strings.Builder) {
	for si, s := range c.series {
		fmt.Fprintf(sb, "  %c %s\n", curveMarkers[si%len(curveMarkers)], s.name)
	}
}

// CDF converts a sample of values into cumulative-fraction points
// (value, fraction <= value), suitable for a Curve. The input is not
// modified; ties collapse into one point at the higher fraction.
func CDF(values []float64) []Point {
	if len(values) == 0 {
		return nil
	}
	vs := append([]float64(nil), values...)
	sort.Float64s(vs)
	var pts []Point
	for i, v := range vs {
		frac := float64(i+1) / float64(len(vs))
		if len(pts) > 0 && pts[len(pts)-1].X == v {
			pts[len(pts)-1].Y = frac
			continue
		}
		pts = append(pts, Point{X: v, Y: frac})
	}
	return pts
}
