package report

import (
	"strings"
	"testing"
)

func TestBarChartRendering(t *testing.T) {
	c := &BarChart{Title: "demo", Width: 10}
	c.Add("a", 100, "%")
	c.Add("bb", 50, "%")
	c.Add("c", 0, "%")
	s := c.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("chart lines = %d:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[1], strings.Repeat("█", 10)) {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if !strings.Contains(lines[2], strings.Repeat("█", 5)) || strings.Contains(lines[2], strings.Repeat("█", 6)) {
		t.Errorf("half bar wrong: %q", lines[2])
	}
	if strings.Contains(lines[3], "█") {
		t.Errorf("zero bar drew blocks: %q", lines[3])
	}
	if !strings.Contains(lines[1], "100%") {
		t.Errorf("value label missing: %q", lines[1])
	}
}

func TestBarChartNegative(t *testing.T) {
	c := &BarChart{Width: 4}
	c.Add("neg", -2, "")
	c.Add("pos", 4, "")
	s := c.String()
	if !strings.Contains(s, "|-██ ") {
		t.Errorf("negative bar not marked:\n%s", s)
	}
}

func TestBarChartTinyNonZero(t *testing.T) {
	c := &BarChart{Width: 10}
	c.Add("tiny", 0.001, "")
	c.Add("big", 100, "")
	if !strings.Contains(strings.Split(c.String(), "\n")[0], "█") {
		t.Error("tiny non-zero value rendered no bar")
	}
}

func TestChartFromTable(t *testing.T) {
	tb := &Table{Title: "Figure 8", Columns: []string{"Bench", "Log", "SP256"}}
	tb.AddRow("GH", "+2.0%", "+3.4%")
	tb.AddRow("HM", "+2.8%", "+5.3%")
	tb.AddRow("gmean", "+9.4%", "+18.1%")
	c := ChartFromTable(tb, 2, "%")
	s := c.String()
	for _, want := range []string{"GH", "HM", "gmean", "3.4%", "18.1%", "SP256"} {
		if !strings.Contains(s, want) {
			t.Errorf("chart missing %q:\n%s", want, s)
		}
	}
	// Out-of-range column yields an empty chart, not a panic.
	if empty := ChartFromTable(tb, 9, ""); len(empty.bars) != 0 {
		t.Error("out-of-range column produced bars")
	}
}

func TestChartFromTableSkipsNonNumeric(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"A", "B"}}
	tb.AddRow("x", "notanumber")
	tb.AddRow("y", "5")
	c := ChartFromTable(tb, 1, "")
	if len(c.bars) != 1 || c.bars[0].label != "y" {
		t.Errorf("bars = %+v", c.bars)
	}
}
