package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestLineHelpers(t *testing.T) {
	tests := []struct {
		addr     uint64
		wantBase uint64
		wantOff  int
	}{
		{0, 0, 0},
		{1, 0, 1},
		{63, 0, 63},
		{64, 64, 0},
		{65, 64, 1},
		{0x12345, 0x12340, 5},
	}
	for _, tt := range tests {
		if got := LineAddr(tt.addr); got != tt.wantBase {
			t.Errorf("LineAddr(%#x) = %#x, want %#x", tt.addr, got, tt.wantBase)
		}
		if got := LineOffset(tt.addr); got != tt.wantOff {
			t.Errorf("LineOffset(%#x) = %d, want %d", tt.addr, got, tt.wantOff)
		}
	}
}

func TestSameLine(t *testing.T) {
	if !SameLine(0, 63) {
		t.Error("0 and 63 should share a line")
	}
	if SameLine(63, 64) {
		t.Error("63 and 64 should not share a line")
	}
}

func TestLinesSpanned(t *testing.T) {
	tests := []struct {
		addr uint64
		size int
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 64, 1},
		{0, 65, 2},
		{63, 1, 1},
		{63, 2, 2},
		{60, 256, 5},
		{64, 128, 2},
	}
	for _, tt := range tests {
		if got := LinesSpanned(tt.addr, tt.size); got != tt.want {
			t.Errorf("LinesSpanned(%#x, %d) = %d, want %d", tt.addr, tt.size, got, tt.want)
		}
	}
}

func TestAllocAlignment(t *testing.T) {
	s := NewSpace(DefaultBase)
	a := s.Alloc(10, 64)
	if a%64 != 0 {
		t.Errorf("Alloc not 64-aligned: %#x", a)
	}
	b := s.Alloc(1, 64)
	if b%64 != 0 || b <= a {
		t.Errorf("second Alloc bad: a=%#x b=%#x", a, b)
	}
	c := s.Alloc(8, 8)
	if c%8 != 0 {
		t.Errorf("Alloc not 8-aligned: %#x", c)
	}
}

func TestAllocNeverReturnsNil(t *testing.T) {
	s := NewSpace(DefaultBase)
	for i := 0; i < 1000; i++ {
		if a := s.AllocLines(1); a == 0 {
			t.Fatal("allocator returned nil address")
		}
	}
}

func TestAllocPanics(t *testing.T) {
	s := NewSpace(DefaultBase)
	for _, fn := range []func(){
		func() { s.Alloc(-1, 1) },
		func() { s.Alloc(8, 3) },
		func() { NewSpace(0) },
		func() { NewSpace(33) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := NewSpace(DefaultBase)
	data := []byte("hello, persistent world")
	addr := s.Alloc(len(data), 1)
	s.Write(addr, data)
	got := make([]byte, len(data))
	s.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Errorf("round trip: got %q want %q", got, data)
	}
}

func TestReadUntouchedIsZero(t *testing.T) {
	s := NewSpace(DefaultBase)
	buf := []byte{1, 2, 3, 4}
	s.Read(0x999000, buf)
	for i, b := range buf {
		if b != 0 {
			t.Errorf("byte %d = %d, want 0", i, b)
		}
	}
}

func TestCrossPageAccess(t *testing.T) {
	s := NewSpace(DefaultBase)
	// Straddle a page boundary.
	addr := uint64(2*PageSize - 8)
	data := make([]byte, 16)
	for i := range data {
		data[i] = byte(i + 1)
	}
	s.Write(addr, data)
	got := make([]byte, 16)
	s.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Errorf("cross-page round trip failed: %v vs %v", got, data)
	}
	if s.PageCount() != 2 {
		t.Errorf("PageCount = %d, want 2", s.PageCount())
	}
}

func TestU64RoundTrip(t *testing.T) {
	s := NewSpace(DefaultBase)
	addr := s.Alloc(8, 8)
	const v = uint64(0xdeadbeefcafebabe)
	s.WriteU64(addr, v)
	if got := s.ReadU64(addr); got != v {
		t.Errorf("got %#x want %#x", got, v)
	}
}

func TestLineRoundTrip(t *testing.T) {
	s := NewSpace(DefaultBase)
	base := s.AllocLines(1)
	line := make([]byte, LineSize)
	for i := range line {
		line[i] = byte(i)
	}
	s.WriteLine(base, line)
	got := s.ReadLine(base + 17) // any address in the line
	if !bytes.Equal(got, line) {
		t.Error("line round trip mismatch")
	}
}

func TestWriteLinePanics(t *testing.T) {
	s := NewSpace(DefaultBase)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on misaligned WriteLine")
		}
	}()
	s.WriteLine(3, make([]byte, LineSize))
}

func TestCloneIsDeep(t *testing.T) {
	s := NewSpace(DefaultBase)
	addr := s.Alloc(8, 8)
	s.WriteU64(addr, 42)
	c := s.Clone()
	s.WriteU64(addr, 99)
	if got := c.ReadU64(addr); got != 42 {
		t.Errorf("clone mutated: got %d want 42", got)
	}
	if c.Brk() != s.Brk() {
		t.Error("clone brk mismatch")
	}
}

func TestCopyLineTo(t *testing.T) {
	src := NewSpace(DefaultBase)
	dst := NewSpace(DefaultBase)
	base := src.AllocLines(1)
	src.WriteU64(base, 7)
	src.WriteU64(base+56, 8)
	src.CopyLineTo(dst, base)
	if dst.ReadU64(base) != 7 || dst.ReadU64(base+56) != 8 {
		t.Error("CopyLineTo did not copy full line")
	}
}

func TestQuickReadWrite(t *testing.T) {
	s := NewSpace(DefaultBase)
	f := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := DefaultBase + uint64(off%(1<<20))
		s.Write(addr, data)
		got := make([]byte, len(data))
		s.Read(addr, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickAllocDisjoint(t *testing.T) {
	s := NewSpace(DefaultBase)
	type region struct {
		addr uint64
		size int
	}
	var regions []region
	f := func(sz uint8) bool {
		size := int(sz)%128 + 1
		addr := s.Alloc(size, 8)
		for _, r := range regions {
			if addr < r.addr+uint64(r.size) && r.addr < addr+uint64(size) {
				return false // overlap
			}
		}
		regions = append(regions, region{addr, size})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
