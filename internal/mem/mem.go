// Package mem provides the simulated byte-addressable memory space that
// persistent data structures execute against.
//
// The space is sparse: storage is allocated in fixed-size pages on first
// touch, so populating a few hundred megabytes of tree nodes costs only the
// pages actually written. Addresses are plain uint64 values in a flat
// address space; address 0 is reserved as the nil pointer.
package mem

import (
	"encoding/binary"
	"fmt"
)

const (
	// LineSize is the cache-block size used throughout the simulator.
	// The paper sizes every data-structure node to one 64-byte line.
	LineSize = 64

	// PageShift/PageSize define the sparse backing-page granularity.
	PageShift = 12
	PageSize  = 1 << PageShift
	pageMask  = PageSize - 1
)

// LineAddr returns the line-aligned base address containing addr.
func LineAddr(addr uint64) uint64 { return addr &^ uint64(LineSize-1) }

// LineOffset returns the offset of addr within its cache line.
func LineOffset(addr uint64) int { return int(addr & (LineSize - 1)) }

// SameLine reports whether two addresses fall in the same cache line.
func SameLine(a, b uint64) bool { return LineAddr(a) == LineAddr(b) }

// LinesSpanned returns the number of cache lines touched by the byte range
// [addr, addr+size).
func LinesSpanned(addr uint64, size int) int {
	if size <= 0 {
		return 0
	}
	first := LineAddr(addr)
	last := LineAddr(addr + uint64(size) - 1)
	return int((last-first)/LineSize) + 1
}

// Space is a sparse, paged simulated memory. The zero value is not usable;
// call NewSpace.
type Space struct {
	pages map[uint64]*[PageSize]byte
	brk   uint64 // bump-allocation cursor
}

// NewSpace returns an empty memory space whose allocator starts at base.
// base must be non-zero (0 is the nil address) and line-aligned.
func NewSpace(base uint64) *Space {
	if base == 0 || base%LineSize != 0 {
		panic(fmt.Sprintf("mem: invalid allocator base %#x", base))
	}
	return &Space{pages: make(map[uint64]*[PageSize]byte), brk: base}
}

// DefaultBase is the conventional allocator base used by the simulator:
// a 1 MiB offset, leaving low memory free for metadata regions.
const DefaultBase = 1 << 20

// Alloc reserves size bytes aligned to align (which must be a power of two,
// or 0/1 for byte alignment) and returns the base address. Allocation is a
// bump pointer: the simulator never frees (the paper's benchmarks likewise
// do not garbage-collect deleted nodes, §5.2).
func (s *Space) Alloc(size int, align int) uint64 {
	if size < 0 {
		panic("mem: negative allocation")
	}
	if align <= 1 {
		align = 1
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d not a power of two", align))
	}
	a := uint64(align)
	addr := (s.brk + a - 1) &^ (a - 1)
	s.brk = addr + uint64(size)
	return addr
}

// AllocLines reserves n cache lines, line-aligned.
func (s *Space) AllocLines(n int) uint64 { return s.Alloc(n*LineSize, LineSize) }

// Brk returns the current allocation cursor (exclusive upper bound of all
// allocations so far).
func (s *Space) Brk() uint64 { return s.brk }

// SetBrk advances the allocation cursor. It only moves forward: after a
// simulated crash the persistence model restores the pre-crash cursor so
// that addresses allocated by lost transactions are never reused.
func (s *Space) SetBrk(b uint64) {
	if b < s.brk {
		panic("mem: SetBrk may not move the allocator backwards")
	}
	s.brk = b
}

func (s *Space) page(addr uint64, create bool) *[PageSize]byte {
	id := addr >> PageShift
	p := s.pages[id]
	if p == nil && create {
		p = new([PageSize]byte)
		s.pages[id] = p
	}
	return p
}

// Read copies len(dst) bytes starting at addr into dst. Untouched memory
// reads as zero.
func (s *Space) Read(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := int(addr & pageMask)
		n := PageSize - off
		if n > len(dst) {
			n = len(dst)
		}
		if p := s.page(addr, false); p != nil {
			copy(dst[:n], p[off:off+n])
		} else {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		addr += uint64(n)
	}
}

// Write copies src into memory starting at addr.
func (s *Space) Write(addr uint64, src []byte) {
	for len(src) > 0 {
		off := int(addr & pageMask)
		n := PageSize - off
		if n > len(src) {
			n = len(src)
		}
		copy(s.page(addr, true)[off:off+n], src[:n])
		src = src[n:]
		addr += uint64(n)
	}
}

// ReadU64 reads a little-endian uint64 at addr.
func (s *Space) ReadU64(addr uint64) uint64 {
	var b [8]byte
	s.Read(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// WriteU64 writes a little-endian uint64 at addr.
func (s *Space) WriteU64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	s.Write(addr, b[:])
}

// ReadLine copies the 64-byte line containing addr into a fresh buffer.
func (s *Space) ReadLine(addr uint64) []byte {
	buf := make([]byte, LineSize)
	s.Read(LineAddr(addr), buf)
	return buf
}

// WriteLine overwrites the full line at line-aligned address base.
func (s *Space) WriteLine(base uint64, src []byte) {
	if base%LineSize != 0 || len(src) != LineSize {
		panic("mem: WriteLine requires a line-aligned address and 64-byte buffer")
	}
	s.Write(base, src)
}

// Clone returns a deep copy of the space. Used by the crash model to
// snapshot the durable image.
func (s *Space) Clone() *Space {
	c := &Space{pages: make(map[uint64]*[PageSize]byte, len(s.pages)), brk: s.brk}
	for id, p := range s.pages {
		cp := new([PageSize]byte)
		*cp = *p
		c.pages[id] = cp
	}
	return c
}

// CopyLineTo copies the line at line-aligned base from s into dst.
func (s *Space) CopyLineTo(dst *Space, base uint64) {
	var buf [LineSize]byte
	s.Read(base, buf[:])
	dst.Write(base, buf[:])
}

// PageCount reports how many backing pages have been materialized.
func (s *Space) PageCount() int { return len(s.pages) }
