package trace

import (
	"bytes"
	"testing"

	"specpersist/internal/isa"
)

// fuzzSeed encodes a valid trace for the fuzz corpus.
func fuzzSeed(instrs []isa.Instr) []byte {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		panic(err)
	}
	for _, in := range instrs {
		w.Emit(in)
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzTraceFile feeds arbitrary bytes to the binary trace reader. The
// reader must never panic and must terminate; any input it accepts
// cleanly must round-trip — re-encoding the decoded instructions and
// decoding again yields the identical instruction sequence.
func FuzzTraceFile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(fileMagic))
	f.Add([]byte(fileMagic + "\x01"))
	f.Add([]byte("NOTATRACE"))
	f.Add(fuzzSeed(nil))
	f.Add(fuzzSeed([]isa.Instr{
		{Op: isa.ALU, Lat: 1, Dst: 1},
		{Op: isa.Store, Addr: 0x1040, Size: 8, Src1: 1},
		{Op: isa.Clwb, Addr: 0x1040},
		{Op: isa.Sfence},
		{Op: isa.Pcommit},
		{Op: isa.Sfence},
		{Op: isa.Load, Addr: 0x2000, Size: 8, Dst: 2, Lat: 4},
	}))
	// Address deltas that stress the zigzag encoding's extremes.
	f.Add(fuzzSeed([]isa.Instr{
		{Op: isa.Store, Addr: 0, Size: 1},
		{Op: isa.Store, Addr: ^uint64(0), Size: 1},
		{Op: isa.Store, Addr: 1 << 63, Size: 1},
		{Op: isa.Store, Addr: 42, Size: 1},
	}))
	// Truncated record: valid header + a partial instruction.
	f.Add(append([]byte(fileMagic+"\x01"), byte(isa.Store), 8))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header — fine, as long as it didn't panic
		}
		var got []isa.Instr
		for {
			in, ok := r.Next()
			if !ok {
				break
			}
			got = append(got, in)
		}
		// Next must stay terminated once the stream ends.
		if _, ok := r.Next(); ok {
			t.Fatal("Next returned an instruction after stream end")
		}
		if r.Err() != nil {
			return // decode error mid-stream — fine, as long as it terminated
		}
		// Clean decode: re-encode and decode again; the instruction
		// sequences must match exactly.
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatalf("NewWriter: %v", err)
		}
		for _, in := range got {
			w.Emit(in)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		r2, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode header: %v", err)
		}
		for i, want := range got {
			in, ok := r2.Next()
			if !ok {
				t.Fatalf("re-decode ended at record %d of %d (err: %v)", i, len(got), r2.Err())
			}
			if in != want {
				t.Fatalf("record %d round-trip mismatch: got %+v want %+v", i, in, want)
			}
		}
		if in, ok := r2.Next(); ok {
			t.Fatalf("re-decode produced extra record %+v", in)
		}
		if err := r2.Err(); err != nil {
			t.Fatalf("re-decode error: %v", err)
		}
	})
}
