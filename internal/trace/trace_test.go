package trace

import (
	"testing"
	"testing/quick"

	"specpersist/internal/isa"
)

func TestBufferRoundTrip(t *testing.T) {
	var b Buffer
	b.Emit(isa.Instr{Op: isa.Sfence})
	b.Emit(isa.Instr{Op: isa.Pcommit})
	if b.Len() != 2 || b.Remaining() != 2 {
		t.Fatalf("Len=%d Remaining=%d", b.Len(), b.Remaining())
	}
	in, ok := b.Next()
	if !ok || in.Op != isa.Sfence {
		t.Fatalf("first = %v, %v", in, ok)
	}
	in, ok = b.Next()
	if !ok || in.Op != isa.Pcommit {
		t.Fatalf("second = %v, %v", in, ok)
	}
	if _, ok := b.Next(); ok {
		t.Fatal("expected exhausted stream")
	}
	b.Rewind()
	if b.Remaining() != 2 {
		t.Fatal("Rewind did not restore position")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestFuncSource(t *testing.T) {
	n := 0
	src := FuncSource(func() (isa.Instr, bool) {
		if n >= 3 {
			return isa.Instr{}, false
		}
		n++
		return isa.Instr{Op: isa.ALU, Dst: isa.Reg(n)}, true
	})
	count := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		count++
	}
	if count != 3 {
		t.Errorf("drained %d instrs, want 3", count)
	}
}

func TestSliceSource(t *testing.T) {
	src := SliceSource([]isa.Instr{{Op: isa.Sfence}, {Op: isa.Mfence}})
	in, ok := src.Next()
	if !ok || in.Op != isa.Sfence {
		t.Fatal("bad first")
	}
	if _, ok = src.Next(); !ok {
		t.Fatal("bad second")
	}
	if _, ok = src.Next(); ok {
		t.Fatal("should be drained")
	}
}

func TestCountSink(t *testing.T) {
	var c CountSink
	c.Emit(isa.Instr{Op: isa.Load})
	c.Emit(isa.Instr{Op: isa.Load})
	c.Emit(isa.Instr{Op: isa.Pcommit})
	if c.Count(isa.Load) != 2 || c.Count(isa.Pcommit) != 1 || c.Total != 3 {
		t.Errorf("counts wrong: %+v", c)
	}
}

func TestTee(t *testing.T) {
	var a, b CountSink
	tee := Tee{&a, &b}
	tee.Emit(isa.Instr{Op: isa.Sfence})
	if a.Total != 1 || b.Total != 1 {
		t.Error("Tee did not duplicate")
	}
}

func TestBuilderEmitsValidStream(t *testing.T) {
	var buf Buffer
	b := NewBuilder(NewValidator(&buf))
	r1 := b.Load(0x1000, 8, isa.NoReg)
	r2 := b.ALU(0, r1)
	b.Store(0x1040, 8, r2, r1)
	b.Clwb(0x1040)
	b.Sfence()
	b.Pcommit()
	b.Sfence()
	if buf.Len() != 7 {
		t.Fatalf("emitted %d instrs, want 7", buf.Len())
	}
	if r1 == isa.NoReg || r2 == isa.NoReg || r1 == r2 {
		t.Errorf("bad register allocation: r1=%d r2=%d", r1, r2)
	}
}

func TestBuilderALUChain(t *testing.T) {
	var buf Buffer
	b := NewBuilder(&buf)
	r1, r2, r3, r4 := b.ALU(0), b.ALU(0), b.ALU(0), b.ALU(0)
	out := b.ALU(0, r1, r2, r3, r4)
	// 4 producers + chain of 3 ALU ops to fold 4 deps.
	if buf.Len() != 7 {
		t.Fatalf("len = %d, want 7", buf.Len())
	}
	if out == isa.NoReg {
		t.Fatal("chain result missing")
	}
	// Validate the whole stream.
	v := NewValidator(nil)
	for _, in := range buf.Instrs() {
		v.Emit(in)
	}
}

func TestBuilderFiltersNoReg(t *testing.T) {
	var buf Buffer
	b := NewBuilder(&buf)
	r := b.ALU(0, isa.NoReg, isa.NoReg)
	if r == isa.NoReg {
		t.Fatal("ALU should still produce a register")
	}
	in := buf.Instrs()[0]
	if in.Src1 != isa.NoReg || in.Src2 != isa.NoReg {
		t.Errorf("expected no sources, got %v", in)
	}
}

func TestNilBuilderIsNoop(t *testing.T) {
	var b *Builder
	if b.Enabled() {
		t.Fatal("nil builder reports enabled")
	}
	if r := b.Load(0x100, 8, isa.NoReg); r != isa.NoReg {
		t.Error("nil Load returned a register")
	}
	if r := b.ALU(0, 1, 2); r != isa.NoReg {
		t.Error("nil ALU returned a register")
	}
	b.Store(0x100, 8, 1, 2)
	b.Clwb(0x100)
	b.Clflushopt(0x100)
	b.Pcommit()
	b.Sfence()
	b.Mfence()
	if b.RegCount() != 0 {
		t.Error("nil RegCount != 0")
	}
}

func TestValidatorCatchesUseBeforeDef(t *testing.T) {
	v := NewValidator(nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on use-before-def")
		}
	}()
	v.Emit(isa.Instr{Op: isa.ALU, Dst: 2, Src1: 1})
}

func TestValidatorCatchesDoubleWrite(t *testing.T) {
	v := NewValidator(nil)
	v.Emit(isa.Instr{Op: isa.ALU, Dst: 1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double write")
		}
	}()
	v.Emit(isa.Instr{Op: isa.ALU, Dst: 1})
}

func TestValidatorCatchesInvalidInstr(t *testing.T) {
	v := NewValidator(nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on invalid instr")
		}
	}()
	v.Emit(isa.Instr{Op: isa.Load, Size: 8}) // missing Dst
}

// Property: any sequence of builder calls produces a stream that passes the
// validator.
func TestQuickBuilderStreamsValid(t *testing.T) {
	f := func(ops []uint8) bool {
		var buf Buffer
		b := NewBuilder(NewValidator(&buf))
		var regs []isa.Reg
		dep := func(i int) isa.Reg {
			if len(regs) == 0 {
				return isa.NoReg
			}
			return regs[i%len(regs)]
		}
		for i, op := range ops {
			addr := uint64(0x1000 + (int(op)%64)*8)
			switch op % 6 {
			case 0:
				regs = append(regs, b.Load(addr, 8, dep(i)))
			case 1:
				b.Store(addr, 8, dep(i), dep(i+1))
			case 2:
				regs = append(regs, b.ALU(int(op%4), dep(i), dep(i+1)))
			case 3:
				b.Clwb(addr)
			case 4:
				b.Pcommit()
			case 5:
				b.Sfence()
			}
		}
		return true // validator panics on violation
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
