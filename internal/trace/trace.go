// Package trace carries dynamic instruction streams from the workload layer
// to the timing simulator.
//
// The data-structure code executes functionally against simulated memory
// and, through a Builder, emits one isa.Instr per architectural event: a
// load per memory read, a store per 8-byte memory write, ALU operations for
// key comparisons and address arithmetic, and the PMEM persistence
// instructions. Dependences are expressed through single-assignment virtual
// registers allocated by the Builder, so pointer-chasing chains in the
// trace serialize in the out-of-order core exactly as they would in
// compiled code.
package trace

import (
	"fmt"

	"specpersist/internal/isa"
)

// Sink receives emitted instructions.
type Sink interface {
	Emit(isa.Instr)
}

// Source supplies instructions to the simulator. Next returns false when
// the stream is exhausted.
type Source interface {
	Next() (isa.Instr, bool)
}

// BlockSource is the batched bulk-read path of a Source. NextBlock returns
// the next run of instructions in stream order; an empty slice means the
// stream is exhausted. The returned slice is only valid until the next
// NextBlock, Next, Seek, Rewind or Reset call on the source — block sources
// hand out views of an internal, reusable slab, so the simulator consumes
// instructions without a per-instruction interface call and without the
// source allocating per read. Mixing Next and NextBlock is allowed; both
// consume from the same position.
type BlockSource interface {
	Source
	NextBlock() []isa.Instr
}

// Seeker is the random-access capability of a trace source, measured in
// absolute instruction indices (0 = first instruction of the stream).
//
// This is the rollback-replay contract speculative execution depends on:
// the CPU records the stream position of every checkpointed barrier, and on
// a speculation abort calls Seek with the oldest checkpoint's position. The
// source must then replay the exact same instruction sequence from that
// index that it produced the first time — byte-identical opcodes, addresses
// and registers — because the commit-stream equivalence argument (§4.2.2)
// counts on every squashed effect re-executing exactly once. A source that
// regenerates instructions on the fly (rather than buffering them) can only
// implement Seeker if its generation is deterministic and restartable at
// arbitrary indices.
type Seeker interface {
	Seek(pos uint64)
}

// Rewinder restarts a source from its beginning, equivalent to Seek(0) but
// implementable by streams that can only restart, not random-access.
type Rewinder interface {
	Rewind()
}

// Compile-time contract assertions: the in-memory buffer and the file
// reader are the two sources the CPU model's rollback path relies on.
var (
	_ BlockSource = (*Buffer)(nil)
	_ Seeker      = (*Buffer)(nil)
	_ Rewinder    = (*Buffer)(nil)
	_ BlockSource = (*Reader)(nil)
	_ Seeker      = (*Reader)(nil)
	_ Rewinder    = (*Reader)(nil)
)

// Buffer is an in-memory instruction stream; it implements both Sink and
// Source. The zero value is an empty, usable buffer.
type Buffer struct {
	ins []isa.Instr
	pos int
}

// Emit appends an instruction.
func (b *Buffer) Emit(in isa.Instr) { b.ins = append(b.ins, in) }

// Next returns the next unread instruction.
func (b *Buffer) Next() (isa.Instr, bool) {
	if b.pos >= len(b.ins) {
		return isa.Instr{}, false
	}
	in := b.ins[b.pos]
	b.pos++
	return in, true
}

// NextBlock returns every unread instruction as one block and marks them
// consumed. The slice aliases the buffer's storage: it stays valid until
// the buffer is next written to (Emit/Reset), per the BlockSource contract.
func (b *Buffer) NextBlock() []isa.Instr {
	blk := b.ins[b.pos:]
	b.pos = len(b.ins)
	return blk
}

// Len reports the total number of instructions emitted.
func (b *Buffer) Len() int { return len(b.ins) }

// Remaining reports how many instructions are still unread.
func (b *Buffer) Remaining() int { return len(b.ins) - b.pos }

// Rewind restarts reading from the beginning.
func (b *Buffer) Rewind() { b.pos = 0 }

// Seek moves the read position to an absolute instruction index. The CPU
// model uses this to restart execution from a checkpoint after a
// speculation abort.
func (b *Buffer) Seek(pos uint64) {
	if pos > uint64(len(b.ins)) {
		panic("trace: seek past end of buffer")
	}
	b.pos = int(pos)
}

// Reset discards all contents.
func (b *Buffer) Reset() { b.ins = b.ins[:0]; b.pos = 0 }

// Instrs exposes the underlying slice (read-only use).
func (b *Buffer) Instrs() []isa.Instr { return b.ins }

// FuncSource adapts a function to the Source interface.
type FuncSource func() (isa.Instr, bool)

// Next calls the wrapped function.
func (f FuncSource) Next() (isa.Instr, bool) { return f() }

// SliceSource returns a Source reading from ins.
func SliceSource(ins []isa.Instr) Source {
	b := &Buffer{ins: ins}
	return b
}

// CountSink tallies emitted instructions by opcode; useful in tests and for
// the instruction-count figures.
type CountSink struct {
	Counts [16]uint64
	Total  uint64
}

// Emit records the instruction.
func (c *CountSink) Emit(in isa.Instr) {
	c.Counts[in.Op]++
	c.Total++
}

// Count returns the tally for one opcode.
func (c *CountSink) Count(op isa.Op) uint64 { return c.Counts[op] }

// Tee duplicates a stream into multiple sinks.
type Tee []Sink

// Emit forwards to every sink.
func (t Tee) Emit(in isa.Instr) {
	for _, s := range t {
		s.Emit(in)
	}
}

// Validator wraps a Sink and panics on malformed streams: invalid
// instructions, registers read before being written, or registers written
// twice (the builder's registers are single-assignment).
type Validator struct {
	Inner   Sink
	written map[isa.Reg]bool
	n       int
}

// NewValidator returns a Validator forwarding to inner (which may be nil to
// validate only).
func NewValidator(inner Sink) *Validator {
	return &Validator{Inner: inner, written: make(map[isa.Reg]bool)}
}

// Emit validates then forwards.
func (v *Validator) Emit(in isa.Instr) {
	if err := in.Validate(); err != nil {
		panic(fmt.Sprintf("trace: instr %d: %v", v.n, err))
	}
	for _, src := range []isa.Reg{in.Src1, in.Src2} {
		if src != isa.NoReg && !v.written[src] {
			panic(fmt.Sprintf("trace: instr %d (%v) reads r%d before any write", v.n, in, src))
		}
	}
	if in.Dst != isa.NoReg {
		if v.written[in.Dst] {
			panic(fmt.Sprintf("trace: instr %d (%v) rewrites r%d", v.n, in, in.Dst))
		}
		v.written[in.Dst] = true
	}
	v.n++
	if v.Inner != nil {
		v.Inner.Emit(in)
	}
}

// Builder allocates virtual registers and emits well-formed instructions.
// A nil *Builder is valid and emits nothing: the workload layer uses a nil
// builder during fast-forward (functional-only) execution.
type Builder struct {
	sink    Sink
	nextReg isa.Reg
}

// NewBuilder returns a Builder emitting into sink.
func NewBuilder(sink Sink) *Builder {
	return &Builder{sink: sink, nextReg: 1}
}

// Enabled reports whether the builder actually emits.
func (b *Builder) Enabled() bool { return b != nil }

func (b *Builder) alloc() isa.Reg {
	r := b.nextReg
	b.nextReg++
	return r
}

// Load emits a load of size bytes at addr whose address depends on addrDep,
// returning the produced register.
func (b *Builder) Load(addr uint64, size int, addrDep isa.Reg) isa.Reg {
	if b == nil {
		return isa.NoReg
	}
	dst := b.alloc()
	b.sink.Emit(isa.Instr{Op: isa.Load, Addr: addr, Size: uint8(size), Dst: dst, Src2: addrDep})
	return dst
}

// Store emits a store of size bytes at addr. dataDep is the register
// holding the stored value; addrDep the address dependence.
func (b *Builder) Store(addr uint64, size int, dataDep, addrDep isa.Reg) {
	if b == nil {
		return
	}
	b.sink.Emit(isa.Instr{Op: isa.Store, Addr: addr, Size: uint8(size), Src1: dataDep, Src2: addrDep})
}

// ALU emits a compute chain consuming all deps (two per instruction) with
// per-instruction latency lat (0 = default) and returns the result register.
func (b *Builder) ALU(lat int, deps ...isa.Reg) isa.Reg {
	if b == nil {
		return isa.NoReg
	}
	// Pick the first two present operands in place: this runs once per
	// emitted ALU op (the hottest emit path), so it must not materialize a
	// filtered slice.
	var s1, s2 isa.Reg
	n, i := 0, 0
	for ; i < len(deps) && n < 2; i++ {
		if deps[i] == isa.NoReg {
			continue
		}
		if n == 0 {
			s1 = deps[i]
		} else {
			s2 = deps[i]
		}
		n++
	}
	dst := b.alloc()
	b.sink.Emit(isa.Instr{Op: isa.ALU, Dst: dst, Src1: s1, Src2: s2, Lat: uint8(lat)})
	// Fold any remaining operands into a dependence chain.
	for ; i < len(deps); i++ {
		if deps[i] == isa.NoReg {
			continue
		}
		next := b.alloc()
		b.sink.Emit(isa.Instr{Op: isa.ALU, Dst: next, Src1: dst, Src2: deps[i], Lat: uint8(lat)})
		dst = next
	}
	return dst
}

// Clwb emits a clwb of the line containing addr.
func (b *Builder) Clwb(addr uint64) {
	if b == nil {
		return
	}
	b.sink.Emit(isa.Instr{Op: isa.Clwb, Addr: addr})
}

// Clflushopt emits a clflushopt of the line containing addr.
func (b *Builder) Clflushopt(addr uint64) {
	if b == nil {
		return
	}
	b.sink.Emit(isa.Instr{Op: isa.Clflushopt, Addr: addr})
}

// Pcommit emits a pcommit.
func (b *Builder) Pcommit() {
	if b == nil {
		return
	}
	b.sink.Emit(isa.Instr{Op: isa.Pcommit})
}

// Sfence emits an sfence.
func (b *Builder) Sfence() {
	if b == nil {
		return
	}
	b.sink.Emit(isa.Instr{Op: isa.Sfence})
}

// Mfence emits an mfence.
func (b *Builder) Mfence() {
	if b == nil {
		return
	}
	b.sink.Emit(isa.Instr{Op: isa.Mfence})
}

// RegCount reports how many registers have been allocated.
func (b *Builder) RegCount() int {
	if b == nil {
		return 0
	}
	return int(b.nextReg) - 1
}
