// Package trace carries dynamic instruction streams from the workload layer
// to the timing simulator.
//
// The data-structure code executes functionally against simulated memory
// and, through a Builder, emits one isa.Instr per architectural event: a
// load per memory read, a store per 8-byte memory write, ALU operations for
// key comparisons and address arithmetic, and the PMEM persistence
// instructions. Dependences are expressed through single-assignment virtual
// registers allocated by the Builder, so pointer-chasing chains in the
// trace serialize in the out-of-order core exactly as they would in
// compiled code.
package trace

import (
	"fmt"

	"specpersist/internal/isa"
)

// Sink receives emitted instructions.
type Sink interface {
	Emit(isa.Instr)
}

// Source supplies instructions to the simulator. Next returns false when
// the stream is exhausted.
type Source interface {
	Next() (isa.Instr, bool)
}

// Buffer is an in-memory instruction stream; it implements both Sink and
// Source. The zero value is an empty, usable buffer.
type Buffer struct {
	ins []isa.Instr
	pos int
}

// Emit appends an instruction.
func (b *Buffer) Emit(in isa.Instr) { b.ins = append(b.ins, in) }

// Next returns the next unread instruction.
func (b *Buffer) Next() (isa.Instr, bool) {
	if b.pos >= len(b.ins) {
		return isa.Instr{}, false
	}
	in := b.ins[b.pos]
	b.pos++
	return in, true
}

// Len reports the total number of instructions emitted.
func (b *Buffer) Len() int { return len(b.ins) }

// Remaining reports how many instructions are still unread.
func (b *Buffer) Remaining() int { return len(b.ins) - b.pos }

// Rewind restarts reading from the beginning.
func (b *Buffer) Rewind() { b.pos = 0 }

// Seek moves the read position to an absolute instruction index. The CPU
// model uses this to restart execution from a checkpoint after a
// speculation abort.
func (b *Buffer) Seek(pos uint64) {
	if pos > uint64(len(b.ins)) {
		panic("trace: seek past end of buffer")
	}
	b.pos = int(pos)
}

// Reset discards all contents.
func (b *Buffer) Reset() { b.ins = b.ins[:0]; b.pos = 0 }

// Instrs exposes the underlying slice (read-only use).
func (b *Buffer) Instrs() []isa.Instr { return b.ins }

// FuncSource adapts a function to the Source interface.
type FuncSource func() (isa.Instr, bool)

// Next calls the wrapped function.
func (f FuncSource) Next() (isa.Instr, bool) { return f() }

// SliceSource returns a Source reading from ins.
func SliceSource(ins []isa.Instr) Source {
	b := &Buffer{ins: ins}
	return b
}

// CountSink tallies emitted instructions by opcode; useful in tests and for
// the instruction-count figures.
type CountSink struct {
	Counts [16]uint64
	Total  uint64
}

// Emit records the instruction.
func (c *CountSink) Emit(in isa.Instr) {
	c.Counts[in.Op]++
	c.Total++
}

// Count returns the tally for one opcode.
func (c *CountSink) Count(op isa.Op) uint64 { return c.Counts[op] }

// Tee duplicates a stream into multiple sinks.
type Tee []Sink

// Emit forwards to every sink.
func (t Tee) Emit(in isa.Instr) {
	for _, s := range t {
		s.Emit(in)
	}
}

// Validator wraps a Sink and panics on malformed streams: invalid
// instructions, registers read before being written, or registers written
// twice (the builder's registers are single-assignment).
type Validator struct {
	Inner   Sink
	written map[isa.Reg]bool
	n       int
}

// NewValidator returns a Validator forwarding to inner (which may be nil to
// validate only).
func NewValidator(inner Sink) *Validator {
	return &Validator{Inner: inner, written: make(map[isa.Reg]bool)}
}

// Emit validates then forwards.
func (v *Validator) Emit(in isa.Instr) {
	if err := in.Validate(); err != nil {
		panic(fmt.Sprintf("trace: instr %d: %v", v.n, err))
	}
	for _, src := range []isa.Reg{in.Src1, in.Src2} {
		if src != isa.NoReg && !v.written[src] {
			panic(fmt.Sprintf("trace: instr %d (%v) reads r%d before any write", v.n, in, src))
		}
	}
	if in.Dst != isa.NoReg {
		if v.written[in.Dst] {
			panic(fmt.Sprintf("trace: instr %d (%v) rewrites r%d", v.n, in, in.Dst))
		}
		v.written[in.Dst] = true
	}
	v.n++
	if v.Inner != nil {
		v.Inner.Emit(in)
	}
}

// Builder allocates virtual registers and emits well-formed instructions.
// A nil *Builder is valid and emits nothing: the workload layer uses a nil
// builder during fast-forward (functional-only) execution.
type Builder struct {
	sink    Sink
	nextReg isa.Reg
}

// NewBuilder returns a Builder emitting into sink.
func NewBuilder(sink Sink) *Builder {
	return &Builder{sink: sink, nextReg: 1}
}

// Enabled reports whether the builder actually emits.
func (b *Builder) Enabled() bool { return b != nil }

func (b *Builder) alloc() isa.Reg {
	r := b.nextReg
	b.nextReg++
	return r
}

// Load emits a load of size bytes at addr whose address depends on addrDep,
// returning the produced register.
func (b *Builder) Load(addr uint64, size int, addrDep isa.Reg) isa.Reg {
	if b == nil {
		return isa.NoReg
	}
	dst := b.alloc()
	b.sink.Emit(isa.Instr{Op: isa.Load, Addr: addr, Size: uint8(size), Dst: dst, Src2: addrDep})
	return dst
}

// Store emits a store of size bytes at addr. dataDep is the register
// holding the stored value; addrDep the address dependence.
func (b *Builder) Store(addr uint64, size int, dataDep, addrDep isa.Reg) {
	if b == nil {
		return
	}
	b.sink.Emit(isa.Instr{Op: isa.Store, Addr: addr, Size: uint8(size), Src1: dataDep, Src2: addrDep})
}

// ALU emits a compute chain consuming all deps (two per instruction) with
// per-instruction latency lat (0 = default) and returns the result register.
func (b *Builder) ALU(lat int, deps ...isa.Reg) isa.Reg {
	if b == nil {
		return isa.NoReg
	}
	// Filter out absent operands.
	var live []isa.Reg
	for _, d := range deps {
		if d != isa.NoReg {
			live = append(live, d)
		}
	}
	var s1, s2 isa.Reg
	if len(live) > 0 {
		s1 = live[0]
	}
	if len(live) > 1 {
		s2 = live[1]
	}
	dst := b.alloc()
	b.sink.Emit(isa.Instr{Op: isa.ALU, Dst: dst, Src1: s1, Src2: s2, Lat: uint8(lat)})
	// Fold any remaining operands into a dependence chain.
	for i := 2; i < len(live); i++ {
		next := b.alloc()
		b.sink.Emit(isa.Instr{Op: isa.ALU, Dst: next, Src1: dst, Src2: live[i], Lat: uint8(lat)})
		dst = next
	}
	return dst
}

// Clwb emits a clwb of the line containing addr.
func (b *Builder) Clwb(addr uint64) {
	if b == nil {
		return
	}
	b.sink.Emit(isa.Instr{Op: isa.Clwb, Addr: addr})
}

// Clflushopt emits a clflushopt of the line containing addr.
func (b *Builder) Clflushopt(addr uint64) {
	if b == nil {
		return
	}
	b.sink.Emit(isa.Instr{Op: isa.Clflushopt, Addr: addr})
}

// Pcommit emits a pcommit.
func (b *Builder) Pcommit() {
	if b == nil {
		return
	}
	b.sink.Emit(isa.Instr{Op: isa.Pcommit})
}

// Sfence emits an sfence.
func (b *Builder) Sfence() {
	if b == nil {
		return
	}
	b.sink.Emit(isa.Instr{Op: isa.Sfence})
}

// Mfence emits an mfence.
func (b *Builder) Mfence() {
	if b == nil {
		return
	}
	b.sink.Emit(isa.Instr{Op: isa.Mfence})
}

// RegCount reports how many registers have been allocated.
func (b *Builder) RegCount() int {
	if b == nil {
		return 0
	}
	return int(b.nextReg) - 1
}
