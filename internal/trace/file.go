package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"specpersist/internal/isa"
)

// Binary trace file format: a magic header, a format version, then one
// varint-encoded record per instruction. Addresses are delta-encoded
// against the previous instruction's address (zigzag), registers against
// the running register counter — traces compress to a few bytes per
// instruction, so paper-scale streams (hundreds of millions of
// instructions) stay practical on disk.
const (
	fileMagic   = "SPTRACE\x00"
	fileVersion = 1
)

// Writer streams instructions to an io.Writer in the binary trace format.
// It implements Sink. Close (or Flush) must be called to drain the buffer.
type Writer struct {
	w        *bufio.Writer
	prevAddr uint64
	n        uint64
	err      error
}

// NewWriter writes the file header and returns a streaming writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	if err := bw.WriteByte(fileVersion); err != nil {
		return nil, fmt.Errorf("trace: writing version: %w", err)
	}
	return &Writer{w: bw}, nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Emit encodes one instruction. Errors are sticky and surface at Flush.
func (w *Writer) Emit(in isa.Instr) {
	if w.err != nil {
		return
	}
	var buf [40]byte
	n := 0
	buf[n] = byte(in.Op)
	n++
	buf[n] = in.Size
	n++
	buf[n] = in.Lat
	n++
	n += binary.PutUvarint(buf[n:], zigzag(int64(in.Addr)-int64(w.prevAddr)))
	n += binary.PutUvarint(buf[n:], uint64(in.Dst))
	n += binary.PutUvarint(buf[n:], uint64(in.Src1))
	n += binary.PutUvarint(buf[n:], uint64(in.Src2))
	w.prevAddr = in.Addr
	w.n++
	if _, err := w.w.Write(buf[:n]); err != nil {
		w.err = fmt.Errorf("trace: writing record %d: %w", w.n, err)
	}
}

// Count reports how many instructions have been emitted.
func (w *Writer) Count() uint64 { return w.n }

// Flush drains buffered data and returns any sticky error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader streams instructions from a binary trace file. It implements
// Source and BlockSource; decode errors terminate the stream and are
// available from Err. When the underlying reader is an io.Seeker (a file),
// Reader also implements Seeker and Rewinder, which makes file replay a
// valid rollback target for speculative runs: Seek re-decodes the stream
// from the record start, reproducing the identical instruction sequence.
type Reader struct {
	r        *bufio.Reader
	src      io.Reader
	seeker   io.Seeker // non-nil when src supports random access
	startOff int64     // src offset of the file header
	prevAddr uint64
	pos      uint64 // instructions handed out so far
	err      error
	done     bool
	slab     []isa.Instr // reusable block-decode slab
}

// readerBlock is the block-decode slab capacity: large enough to amortize
// the per-block call, small enough to stay cache-resident.
const readerBlock = 1024

// NewReader validates the header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	rd := &Reader{src: r}
	if s, ok := r.(io.Seeker); ok {
		off, err := s.Seek(0, io.SeekCurrent)
		if err == nil {
			rd.seeker = s
			rd.startOff = off
		}
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if ver != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	rd.r = br
	return rd, nil
}

// NextBlock implements BlockSource: it decodes up to readerBlock
// instructions into a reusable slab and returns the filled prefix. An empty
// result means the stream is exhausted (or a decode error stopped it; see
// Err).
func (r *Reader) NextBlock() []isa.Instr {
	if r.slab == nil {
		r.slab = make([]isa.Instr, 0, readerBlock)
	}
	r.slab = r.slab[:0]
	for len(r.slab) < cap(r.slab) {
		in, ok := r.Next()
		if !ok {
			break
		}
		r.slab = append(r.slab, in)
	}
	return r.slab
}

// Rewind restarts the stream from the first record. It panics when the
// underlying reader does not support random access (pipe input).
func (r *Reader) Rewind() {
	if r.seeker == nil {
		panic("trace: rewind on a non-seekable trace stream")
	}
	// Re-read past the (already validated) header.
	if _, err := r.seeker.Seek(r.startOff+int64(len(fileMagic))+1, io.SeekStart); err != nil {
		panic(fmt.Sprintf("trace: rewind: %v", err))
	}
	r.r.Reset(r.src)
	r.prevAddr = 0
	r.pos = 0
	r.err = nil
	r.done = false
}

// Seek moves the read position to an absolute instruction index (the
// rollback-replay contract; see Seeker). Backward seeks require a seekable
// underlying reader; either direction panics when the index lies past the
// end of the stream, mirroring Buffer.Seek.
func (r *Reader) Seek(pos uint64) {
	if pos < r.pos {
		r.Rewind()
	}
	for r.pos < pos {
		if _, ok := r.Next(); !ok {
			panic("trace: seek past end of trace stream")
		}
	}
}

// Next implements Source.
func (r *Reader) Next() (isa.Instr, bool) {
	if r.done {
		return isa.Instr{}, false
	}
	op, err := r.r.ReadByte()
	if err != nil {
		r.done = true
		if err != io.EOF {
			r.err = fmt.Errorf("trace: reading opcode: %w", err)
		}
		return isa.Instr{}, false
	}
	fail := func(what string, err error) (isa.Instr, bool) {
		r.done = true
		r.err = fmt.Errorf("trace: reading %s: %w", what, err)
		return isa.Instr{}, false
	}
	size, err := r.r.ReadByte()
	if err != nil {
		return fail("size", err)
	}
	lat, err := r.r.ReadByte()
	if err != nil {
		return fail("latency", err)
	}
	delta, err := binary.ReadUvarint(r.r)
	if err != nil {
		return fail("address", err)
	}
	dst, err := binary.ReadUvarint(r.r)
	if err != nil {
		return fail("dst", err)
	}
	src1, err := binary.ReadUvarint(r.r)
	if err != nil {
		return fail("src1", err)
	}
	src2, err := binary.ReadUvarint(r.r)
	if err != nil {
		return fail("src2", err)
	}
	addr := uint64(int64(r.prevAddr) + unzigzag(delta))
	r.prevAddr = addr
	r.pos++
	return isa.Instr{
		Op:   isa.Op(op),
		Addr: addr,
		Size: size,
		Lat:  lat,
		Dst:  isa.Reg(dst),
		Src1: isa.Reg(src1),
		Src2: isa.Reg(src2),
	}, true
}

// Err returns the first decode error, if any (io.EOF is not an error).
func (r *Reader) Err() error { return r.err }
