package trace

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"specpersist/internal/isa"
)

func roundTrip(t *testing.T, ins []isa.Instr) []isa.Instr {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range ins {
		w.Emit(in)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(ins)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(ins))
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []isa.Instr
	for {
		in, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, in)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	return out
}

func TestFileRoundTripBasic(t *testing.T) {
	ins := []isa.Instr{
		{Op: isa.ALU, Dst: 1, Lat: 3},
		{Op: isa.Load, Dst: 2, Addr: 0x1000, Size: 8, Src2: 1},
		{Op: isa.Store, Addr: 0x0FF8, Size: 4, Src1: 2}, // backwards delta
		{Op: isa.Clwb, Addr: 0x1000},
		{Op: isa.Pcommit},
		{Op: isa.Sfence},
		{Op: isa.Mfence},
		{Op: isa.Clflushopt, Addr: 1 << 40}, // big jump
		{Op: isa.Clflush, Addr: 0},
	}
	out := roundTrip(t, ins)
	if len(out) != len(ins) {
		t.Fatalf("decoded %d, want %d", len(out), len(ins))
	}
	for i := range ins {
		if out[i] != ins[i] {
			t.Errorf("record %d: %+v != %+v", i, out[i], ins[i])
		}
	}
}

func TestFileRoundTripEmpty(t *testing.T) {
	if out := roundTrip(t, nil); len(out) != 0 {
		t.Fatalf("decoded %d from empty trace", len(out))
	}
}

func TestQuickFileRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%200 + 1
		ins := make([]isa.Instr, n)
		for i := range ins {
			ins[i] = isa.Instr{
				Op:   isa.Op(rng.Intn(9)),
				Addr: rng.Uint64() >> uint(rng.Intn(40)),
				Size: uint8(rng.Intn(9)),
				Lat:  uint8(rng.Intn(8)),
				Dst:  isa.Reg(rng.Intn(1 << 20)),
				Src1: isa.Reg(rng.Intn(1 << 20)),
				Src2: isa.Reg(rng.Intn(1 << 20)),
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, in := range ins {
			w.Emit(in)
		}
		if w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i := range ins {
			got, ok := r.Next()
			if !ok || got != ins[i] {
				return false
			}
		}
		_, ok := r.Next()
		return !ok && r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOTATRACE")); err == nil {
		t.Error("accepted bad magic")
	}
	if _, err := NewReader(strings.NewReader("SPTRACE\x00\x63")); err == nil {
		t.Error("accepted bad version")
	}
	if _, err := NewReader(strings.NewReader("SP")); err == nil {
		t.Error("accepted truncated header")
	}
}

func TestReaderReportsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Emit(isa.Instr{Op: isa.Load, Dst: 5, Addr: 0x1234, Size: 8})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Chop mid-record.
	data := buf.Bytes()[:buf.Len()-2]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Error("decoded a truncated record")
	}
	if r.Err() == nil {
		t.Error("truncation not reported")
	}
}

func TestFileCompression(t *testing.T) {
	// Sequential access patterns should encode to a few bytes per record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	const n = 10000
	for i := 0; i < n; i++ {
		w.Emit(isa.Instr{Op: isa.Store, Addr: uint64(0x1000 + i*8), Size: 8, Src1: isa.Reg(i + 1)})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(buf.Len()) / n
	if perRecord > 12 {
		t.Errorf("%.1f bytes/record, want <= 12", perRecord)
	}
}

// encodeTrace writes ins to a fresh buffer and returns the encoded bytes.
func encodeTrace(t *testing.T, ins []isa.Instr) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range ins {
		w.Emit(in)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func seqTrace(n int) []isa.Instr {
	ins := make([]isa.Instr, n)
	for i := range ins {
		ins[i] = isa.Instr{Op: isa.Store, Addr: uint64(0x1000 + i*8), Size: 8, Src1: isa.Reg(i + 1)}
	}
	return ins
}

func TestReaderNextBlock(t *testing.T) {
	// More than two slabs' worth so block boundaries and the short tail are
	// both exercised.
	ins := seqTrace(2*readerBlock + 100)
	r, err := NewReader(bytes.NewReader(encodeTrace(t, ins)))
	if err != nil {
		t.Fatal(err)
	}
	var out []isa.Instr
	blocks := 0
	for {
		blk := r.NextBlock()
		if len(blk) == 0 {
			break
		}
		blocks++
		out = append(out, blk...) // copy: the slab is reused
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if blocks != 3 {
		t.Errorf("blocks = %d, want 3", blocks)
	}
	if len(out) != len(ins) {
		t.Fatalf("decoded %d, want %d", len(out), len(ins))
	}
	for i := range ins {
		if out[i] != ins[i] {
			t.Fatalf("record %d: %+v != %+v", i, out[i], ins[i])
		}
	}
}

func TestReaderSeekRewind(t *testing.T) {
	ins := seqTrace(2000)
	r, err := NewReader(bytes.NewReader(encodeTrace(t, ins)))
	if err != nil {
		t.Fatal(err)
	}
	// Consume a prefix through the block path, then seek backward: the
	// rollback-replay contract requires the identical suffix.
	for i := 0; i < 1500; i++ {
		if _, ok := r.Next(); !ok {
			t.Fatalf("stream ended at %d", i)
		}
	}
	r.Seek(700)
	for i := 700; i < len(ins); i++ {
		in, ok := r.Next()
		if !ok {
			t.Fatalf("stream ended at %d after seek", i)
		}
		if in != ins[i] {
			t.Fatalf("replayed record %d: %+v != %+v", i, in, ins[i])
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("stream not exhausted after replay")
	}

	// Forward seek from a rewound stream skips records.
	r.Rewind()
	r.Seek(1999)
	in, ok := r.Next()
	if !ok || in != ins[1999] {
		t.Fatalf("forward seek: got %+v, %v", in, ok)
	}

	// Seeking past the end panics, mirroring Buffer.Seek.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("seek past end did not panic")
			}
		}()
		r.Seek(5000)
	}()
}

func TestReaderRewindNonSeekablePanics(t *testing.T) {
	data := encodeTrace(t, seqTrace(4))
	r, err := NewReader(io.NopCloser(bytes.NewReader(data))) // hides io.Seeker
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("rewind on non-seekable stream did not panic")
		}
	}()
	r.Rewind()
}
