package chaos

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzPlanJSON pins the serialization contract the campaign tooling relies
// on: any JSON that decodes into a Plan can be normalized and re-encoded,
// decode -> Normalize -> encode is a fixed point (so shrunk reproducers
// round-trip byte-for-byte), and Validate classifies arbitrary field
// values without panicking. Seed corpus under testdata/fuzz/FuzzPlanJSON.
func FuzzPlanJSON(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"seed":1}`,
		`{"seed":-9,"drop":0.1,"dup":0.05,"delay":0.02,"delay_mult":8,"reorder":0.2}`,
		`{"drop":1.5}`,
		`{"delay":0.1}`,
		`{"partitions":[{"from":100,"to":200,"group":[2,0]}]}`,
		`{"partitions":[{"from":5,"to":5,"group":[0]}],"grays":[{"from":1,"to":2,"node":0,"slow":50}]}`,
		`{"grays":[{"from":10,"to":90,"node":1,"slow":1e6}]}`,
		`{"seed":7,"drop":1e-9,"partitions":[{"from":0,"to":18446744073709551615,"group":[1,3,5]}]}`,
		`{"delay":0.5,"delay_mult":"not a number"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Plan
		if err := json.Unmarshal(data, &p); err != nil {
			return // not a plan; nothing to check
		}
		// Validate must classify, never panic (checked implicitly: a panic
		// fails the fuzz run).
		valid := p.Validate() == nil

		n := p.Normalize()
		if valid && n.Validate() != nil {
			t.Fatalf("Normalize broke a valid plan: %+v -> %+v", p, n)
		}
		enc1, err := json.Marshal(n)
		if err != nil {
			return // non-finite floats don't marshal; acceptable for invalid plans
		}
		var back Plan
		if err := json.Unmarshal(enc1, &back); err != nil {
			t.Fatalf("re-decoding normalized plan failed: %v\n%s", err, enc1)
		}
		enc2, err := json.Marshal(back.Normalize())
		if err != nil {
			t.Fatalf("re-encoding normalized plan failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("decode->normalize->encode is not a fixed point:\n%s\nvs\n%s", enc1, enc2)
		}
	})
}
