// Package chaos is the deterministic fault model for the replicated fleet:
// a JSON-serializable Plan that fully determines every network misbehaviour
// of one internal/cluster run. The fabric it parameterizes draws each
// message's fate (drop, duplicate, delay spike, reorder) splitmix-style
// from the plan seed and the message's global send sequence — never from a
// shared rand.Source whose draw order could depend on scheduling — so two
// runs of one (Config, Plan) pair misbehave identically, byte for byte, at
// any sweep worker count. On top of the per-message fates the plan carries
// cycle-windowed structural faults: partitions (a node group cut off from
// the rest, both directions) and gray nodes (a node whose links slow 10 to
// 100 times without the node crashing — the classic gray failure that
// heartbeat detectors mis-diagnose).
//
// The package deliberately knows nothing about internal/cluster: it is the
// pure fault vocabulary, so the cluster engine can consume plans and the
// campaign drivers can generate, serialize, replay and delta-minimize them
// without an import cycle.
package chaos

import (
	"fmt"
	"math"
	"sort"
)

// MaxSlow bounds a gray window's link-latency multiplier.
const MaxSlow = 100.0

// MaxDelayMult bounds the per-message delay-spike multiplier.
const MaxDelayMult = 100.0

// Partition cuts one node group off from the rest of the fleet for a cycle
// window: every message between a Group member and a non-member whose send
// cycle falls in [From, To) is dropped, in both directions. Heartbeats are
// messages too, so a long partition expires leases and causes failover of
// a perfectly healthy primary — the wrong-suspicion case the no-lost-ack
// checker exists for.
type Partition struct {
	From  uint64 `json:"from"`
	To    uint64 `json:"to"`
	Group []int  `json:"group"`
}

// Gray slows every link of one node by Slow for a cycle window. The node
// keeps executing and committing at full speed — only its messages crawl —
// so it acknowledges late, trips retries and hedges, and may be wrongly
// suspected without ever losing state.
type Gray struct {
	From uint64  `json:"from"`
	To   uint64  `json:"to"`
	Node int     `json:"node"`
	Slow float64 `json:"slow"`
}

// Plan fully determines the fault behaviour of one run. The zero Plan is
// the kind network: no fates fire, no windows are active.
type Plan struct {
	// Seed drives the per-message fate draws, independent of the cluster
	// seed so the same workload can be replayed under many fault schedules.
	Seed int64 `json:"seed"`

	// Per-message fate probabilities, each in [0, 1]. A message draws one
	// fate at most, in the fixed order drop, duplicate, delay, reorder
	// (the draw is a single uniform number against the cumulative ranges),
	// so the fractions must sum to at most 1.
	Drop    float64 `json:"drop,omitempty"`
	Dup     float64 `json:"dup,omitempty"`
	Delay   float64 `json:"delay,omitempty"`
	Reorder float64 `json:"reorder,omitempty"`

	// DelayMult scales a delay-spiked message's one-way latency (must be
	// > 1 when Delay > 0; at most MaxDelayMult).
	DelayMult float64 `json:"delay_mult,omitempty"`

	Partitions []Partition `json:"partitions,omitempty"`
	Grays      []Gray      `json:"grays,omitempty"`
}

// Enabled reports whether the plan can affect any message.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.Drop > 0 || p.Dup > 0 || p.Delay > 0 || p.Reorder > 0 ||
		len(p.Partitions) > 0 || len(p.Grays) > 0
}

// Lossy reports whether the plan can destroy messages outright (drops or
// partitions) — the faults that require deadlines and retries to survive.
func (p *Plan) Lossy() bool {
	if p == nil {
		return false
	}
	return p.Drop > 0 || len(p.Partitions) > 0
}

// splitmix64 is the shared key-spreading finalizer (same constants as the
// cluster ring and network, kept local to avoid the import).
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// FateKind is one per-message outcome.
type FateKind uint8

const (
	FateNone    FateKind = iota
	FateDrop             // the message is lost
	FateDup              // a second copy is delivered (own latency draw)
	FateDelay            // one-way latency is multiplied by DelayMult
	FateReorder          // extra latency in [0, RTT) re-sorts the message
)

func (k FateKind) String() string {
	switch k {
	case FateDrop:
		return "drop"
	case FateDup:
		return "dup"
	case FateDelay:
		return "delay"
	case FateReorder:
		return "reorder"
	default:
		return "none"
	}
}

// Fate draws message seq's fate: a single uniform number from
// splitmix64(seed, seq) tested against the cumulative fraction ranges.
// The extra value returned with FateReorder is a second uniform in [0, 1)
// for the caller to scale into added latency.
func (p *Plan) Fate(seq uint64) (FateKind, float64) {
	if p == nil {
		return FateNone, 0
	}
	u := unit(splitmix64(uint64(p.Seed)*0x9e3779b97f4a7c15 + seq*2 + 1))
	switch {
	case u < p.Drop:
		return FateDrop, 0
	case u < p.Drop+p.Dup:
		return FateDup, 0
	case u < p.Drop+p.Dup+p.Delay:
		return FateDelay, 0
	case u < p.Drop+p.Dup+p.Delay+p.Reorder:
		return FateReorder, unit(splitmix64(uint64(p.Seed)*0x9e3779b97f4a7c15 + seq*2 + 2))
	}
	return FateNone, 0
}

// Partitioned reports whether a message from -> to sent at cycle at crosses
// an active partition cut.
func (p *Plan) Partitioned(from, to int, at uint64) bool {
	if p == nil {
		return false
	}
	for _, w := range p.Partitions {
		if at < w.From || at >= w.To {
			continue
		}
		a, b := false, false
		for _, n := range w.Group {
			if n == from {
				a = true
			}
			if n == to {
				b = true
			}
		}
		if a != b {
			return true
		}
	}
	return false
}

// SlowFactor returns the combined gray-window latency multiplier for a
// message between from and to at cycle at (1 when no window is active;
// multiplicative when both endpoints are gray).
func (p *Plan) SlowFactor(from, to int, at uint64) float64 {
	if p == nil {
		return 1
	}
	f := 1.0
	for _, g := range p.Grays {
		if at < g.From || at >= g.To {
			continue
		}
		if g.Node == from || g.Node == to {
			f *= g.Slow
		}
	}
	return f
}

// Validate rejects plans the fabric would mis-simulate. It never panics,
// whatever the (possibly fuzzer-supplied) field values.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"drop", p.Drop}, {"dup", p.Dup}, {"delay", p.Delay}, {"reorder", p.Reorder}} {
		if math.IsNaN(f.v) || f.v < 0 || f.v > 1 {
			return fmt.Errorf("chaos: %s fraction must be in [0,1], got %g", f.name, f.v)
		}
	}
	if sum := p.Drop + p.Dup + p.Delay + p.Reorder; sum > 1 {
		return fmt.Errorf("chaos: fate fractions sum to %g > 1", sum)
	}
	if p.Delay > 0 && !(p.DelayMult > 1) {
		return fmt.Errorf("chaos: delay spikes need a multiplier > 1, got %g", p.DelayMult)
	}
	if math.IsNaN(p.DelayMult) || p.DelayMult < 0 || p.DelayMult > MaxDelayMult {
		return fmt.Errorf("chaos: delay multiplier must be in [0,%g], got %g", MaxDelayMult, p.DelayMult)
	}
	for i, w := range p.Partitions {
		if w.From >= w.To {
			return fmt.Errorf("chaos: partition %d window [%d,%d) is empty", i, w.From, w.To)
		}
		if len(w.Group) == 0 {
			return fmt.Errorf("chaos: partition %d has an empty group", i)
		}
		seen := map[int]bool{}
		for _, n := range w.Group {
			if n < 0 {
				return fmt.Errorf("chaos: partition %d names negative node %d", i, n)
			}
			if seen[n] {
				return fmt.Errorf("chaos: partition %d names node %d twice", i, n)
			}
			seen[n] = true
		}
	}
	for i, g := range p.Grays {
		if g.From >= g.To {
			return fmt.Errorf("chaos: gray %d window [%d,%d) is empty", i, g.From, g.To)
		}
		if g.Node < 0 {
			return fmt.Errorf("chaos: gray %d names negative node %d", i, g.Node)
		}
		if math.IsNaN(g.Slow) || g.Slow < 1 || g.Slow > MaxSlow {
			return fmt.Errorf("chaos: gray %d slow factor must be in [1,%g], got %g", i, MaxSlow, g.Slow)
		}
	}
	return nil
}

// Normalize returns the canonical form of a valid plan: partition groups
// sorted ascending, partitions ordered by (From, To, first group member),
// grays by (From, To, Node), and an unused DelayMult zeroed. Normalizing a
// normalized plan is the identity, so decode -> Normalize -> re-encode is
// a fixed point — the property the fuzz test pins.
func (p Plan) Normalize() Plan {
	q := p
	if q.Delay == 0 {
		q.DelayMult = 0
	}
	q.Partitions = append([]Partition(nil), p.Partitions...)
	for i := range q.Partitions {
		g := append([]int(nil), q.Partitions[i].Group...)
		sort.Ints(g)
		q.Partitions[i].Group = g
	}
	sort.SliceStable(q.Partitions, func(i, j int) bool {
		a, b := q.Partitions[i], q.Partitions[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Group[0] < b.Group[0]
	})
	if len(q.Partitions) == 0 {
		q.Partitions = nil
	}
	q.Grays = append([]Gray(nil), p.Grays...)
	sort.SliceStable(q.Grays, func(i, j int) bool {
		a, b := q.Grays[i], q.Grays[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Node < b.Node
	})
	if len(q.Grays) == 0 {
		q.Grays = nil
	}
	return q
}

// GenPlan draws a campaign trial plan: moderate per-message fate fractions
// and zero to two partition and gray windows inside [0, span) over a fleet
// of n nodes. Everything is a pure function of the seed, so trial i of a
// campaign is the same plan on every machine and worker count.
func GenPlan(seed int64, nodes int, span uint64) Plan {
	h := func(k uint64) uint64 { return splitmix64(uint64(seed)*0x9e3779b97f4a7c15 + k) }
	u := func(k uint64) float64 { return unit(h(k)) }
	p := Plan{
		Seed:  int64(h(0)),
		Drop:  0.12 * u(1),
		Dup:   0.10 * u(2),
		Delay: 0.08 * u(3),
	}
	if p.Delay > 0 {
		p.DelayMult = 2 + 18*u(4)
	}
	p.Reorder = 0.20 * u(5)
	nparts := int(h(6) % 3)
	if nodes < 2 || nodes > 30 {
		nparts = 0 // no strict subset to cut (or too many membership bits)
	}
	for i := 0; i < nparts; i++ {
		k := uint64(10 + 10*i)
		from := uint64(float64(span) * 0.8 * u(k))
		width := uint64(float64(span) * (0.05 + 0.20*u(k+1)))
		// Group: a nonempty strict subset of the fleet, by membership bits.
		var group []int
		bits := h(k+2)%(1<<uint(nodes)-2) + 1
		for n := 0; n < nodes; n++ {
			if bits&(1<<uint(n)) != 0 {
				group = append(group, n)
			}
		}
		p.Partitions = append(p.Partitions, Partition{From: from, To: from + width + 1, Group: group})
	}
	ngrays := int(h(7) % 3)
	if nodes < 1 {
		ngrays = 0
	}
	for i := 0; i < ngrays; i++ {
		k := uint64(50 + 10*i)
		from := uint64(float64(span) * 0.8 * u(k))
		width := uint64(float64(span) * (0.05 + 0.20*u(k+1)))
		p.Grays = append(p.Grays, Gray{
			From: from, To: from + width + 1,
			Node: int(h(k+2) % uint64(nodes)),
			Slow: 10 + (MaxSlow-10)*u(k+3),
		})
	}
	return p.Normalize()
}
