package chaos

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestZeroPlanIsKind(t *testing.T) {
	var p Plan
	if p.Enabled() || p.Lossy() {
		t.Fatal("zero plan claims to be active")
	}
	if (*Plan)(nil).Enabled() || (*Plan)(nil).Lossy() {
		t.Fatal("nil plan claims to be active")
	}
	for seq := uint64(0); seq < 100; seq++ {
		if k, _ := p.Fate(seq); k != FateNone {
			t.Fatalf("zero plan drew fate %v for seq %d", k, seq)
		}
	}
	if p.Partitioned(0, 1, 5) || p.SlowFactor(0, 1, 5) != 1 {
		t.Fatal("zero plan has active windows")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("zero plan invalid: %v", err)
	}
}

// TestFateDeterminismAndMix: fates are a pure function of (seed, seq), and
// a plan with all four fractions draws each kind at roughly its fraction.
func TestFateDeterminismAndMix(t *testing.T) {
	p := Plan{Seed: 7, Drop: 0.1, Dup: 0.1, Delay: 0.1, DelayMult: 4, Reorder: 0.1}
	q := Plan{Seed: 7, Drop: 0.1, Dup: 0.1, Delay: 0.1, DelayMult: 4, Reorder: 0.1}
	counts := map[FateKind]int{}
	const n = 20000
	for seq := uint64(0); seq < n; seq++ {
		k1, x1 := p.Fate(seq)
		k2, x2 := q.Fate(seq)
		if k1 != k2 || x1 != x2 {
			t.Fatalf("seq %d: identical plans drew different fates", seq)
		}
		counts[k1]++
		if k1 == FateReorder && (x1 < 0 || x1 >= 1) {
			t.Fatalf("seq %d: reorder extra %g out of [0,1)", seq, x1)
		}
	}
	for _, k := range []FateKind{FateDrop, FateDup, FateDelay, FateReorder} {
		got := float64(counts[k]) / n
		if got < 0.08 || got > 0.12 {
			t.Errorf("fate %v frequency %.3f, want ~0.10", k, got)
		}
	}
	r := Plan{Seed: 8, Drop: 0.1, Dup: 0.1, Delay: 0.1, DelayMult: 4, Reorder: 0.1}
	diff := 0
	for seq := uint64(0); seq < n; seq++ {
		k1, _ := p.Fate(seq)
		k2, _ := r.Fate(seq)
		if k1 != k2 {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds drew identical fate streams")
	}
}

func TestPartitionedAndSlowWindows(t *testing.T) {
	p := Plan{
		Partitions: []Partition{{From: 100, To: 200, Group: []int{0, 2}}},
		Grays:      []Gray{{From: 50, To: 150, Node: 1, Slow: 10}},
	}
	cases := []struct {
		from, to int
		at       uint64
		want     bool
	}{
		{0, 1, 150, true},  // across the cut, inside the window
		{1, 0, 150, true},  // symmetric
		{0, 2, 150, false}, // both inside the group
		{1, 3, 150, false}, // both outside the group
		{0, 1, 99, false},  // before the window
		{0, 1, 200, false}, // window end is exclusive
	}
	for _, c := range cases {
		if got := p.Partitioned(c.from, c.to, c.at); got != c.want {
			t.Errorf("Partitioned(%d,%d,%d) = %v, want %v", c.from, c.to, c.at, got, c.want)
		}
	}
	if f := p.SlowFactor(1, 2, 100); f != 10 {
		t.Errorf("gray source factor %g, want 10", f)
	}
	if f := p.SlowFactor(0, 1, 100); f != 10 {
		t.Errorf("gray destination factor %g, want 10", f)
	}
	if f := p.SlowFactor(0, 2, 100); f != 1 {
		t.Errorf("non-gray link factor %g, want 1", f)
	}
	if f := p.SlowFactor(0, 1, 150); f != 1 {
		t.Errorf("expired gray window factor %g, want 1", f)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		p    Plan
		want string
	}{
		{"drop over 1", Plan{Drop: 1.5}, "drop"},
		{"negative dup", Plan{Dup: -0.1}, "dup"},
		{"NaN delay", Plan{Delay: math.NaN()}, "delay"},
		{"fractions over 1", Plan{Drop: 0.5, Dup: 0.6}, "sum"},
		{"delay without mult", Plan{Delay: 0.1}, "multiplier"},
		{"mult too big", Plan{Delay: 0.1, DelayMult: 1000}, "multiplier"},
		{"empty partition window", Plan{Partitions: []Partition{{From: 5, To: 5, Group: []int{0}}}}, "empty"},
		{"empty partition group", Plan{Partitions: []Partition{{From: 1, To: 2}}}, "group"},
		{"negative partition node", Plan{Partitions: []Partition{{From: 1, To: 2, Group: []int{-1}}}}, "negative"},
		{"duplicate partition node", Plan{Partitions: []Partition{{From: 1, To: 2, Group: []int{1, 1}}}}, "twice"},
		{"empty gray window", Plan{Grays: []Gray{{From: 9, To: 3, Node: 0, Slow: 10}}}, "empty"},
		{"gray slow under 1", Plan{Grays: []Gray{{From: 1, To: 2, Node: 0, Slow: 0.5}}}, "slow"},
		{"gray slow over max", Plan{Grays: []Gray{{From: 1, To: 2, Node: 0, Slow: 1e6}}}, "slow"},
		{"negative gray node", Plan{Grays: []Gray{{From: 1, To: 2, Node: -3, Slow: 10}}}, "negative"},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestNormalizeFixedPoint: Normalize is idempotent and canonicalizes group
// and window order without changing semantics.
func TestNormalizeFixedPoint(t *testing.T) {
	p := Plan{
		Seed:      3,
		DelayMult: 8, // unused: Delay is 0, Normalize must zero it
		Partitions: []Partition{
			{From: 300, To: 400, Group: []int{2, 0}},
			{From: 100, To: 200, Group: []int{1}},
		},
		Grays: []Gray{
			{From: 90, To: 95, Node: 2, Slow: 12},
			{From: 10, To: 20, Node: 0, Slow: 30},
		},
	}
	n1 := p.Normalize()
	n2 := n1.Normalize()
	b1, _ := json.Marshal(n1)
	b2, _ := json.Marshal(n2)
	if string(b1) != string(b2) {
		t.Fatalf("Normalize is not idempotent:\n%s\nvs\n%s", b1, b2)
	}
	if n1.DelayMult != 0 {
		t.Errorf("unused DelayMult survived Normalize: %g", n1.DelayMult)
	}
	if n1.Partitions[0].From != 100 || n1.Partitions[1].Group[0] != 0 {
		t.Errorf("windows not canonically ordered: %+v", n1.Partitions)
	}
	if n1.Grays[0].Node != 0 {
		t.Errorf("grays not canonically ordered: %+v", n1.Grays)
	}
	// Same cut semantics after normalization.
	for at := uint64(0); at < 500; at += 7 {
		for from := 0; from < 3; from++ {
			for to := 0; to < 3; to++ {
				if p.Partitioned(from, to, at) != n1.Partitioned(from, to, at) {
					t.Fatalf("Normalize changed partition semantics at (%d,%d,%d)", from, to, at)
				}
			}
		}
	}
}

// TestGenPlanDeterministicAndValid: campaign plans are pure functions of
// the seed, valid, normalized, and not all identical.
func TestGenPlanDeterministicAndValid(t *testing.T) {
	distinct := map[string]bool{}
	for seed := int64(0); seed < 200; seed++ {
		a := GenPlan(seed, 4, 1_000_000)
		b := GenPlan(seed, 4, 1_000_000)
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if string(ja) != string(jb) {
			t.Fatalf("seed %d: GenPlan not deterministic", seed)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid plan: %v\n%s", seed, err, ja)
		}
		jn, _ := json.Marshal(a.Normalize())
		if string(jn) != string(ja) {
			t.Fatalf("seed %d: generated plan is not normalized", seed)
		}
		distinct[string(ja)] = true
	}
	if len(distinct) < 150 {
		t.Fatalf("only %d distinct plans across 200 seeds", len(distinct))
	}
	// Degenerate fleet shapes must not panic.
	for _, nodes := range []int{0, 1, 2, 31, 64} {
		_ = GenPlan(1, nodes, 1000)
	}
}
