// treedb: a persistent ordered index (2-3 B-tree and red-black tree) on
// simulated NVMM, exercising the paper's full-logging policy for
// self-balancing trees, then comparing the Figure 8 variants on the B-tree
// workload — including the Speculative Persistence result.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"specpersist/internal/core"
	"specpersist/internal/workload"
)

func main() {
	log.SetFlags(0)
	fmt.Println("treedb: persistent ordered indexes with full logging")
	fmt.Println()

	// Full logging in action: the transaction conservatively logs the
	// whole root-to-leaf path before touching the tree, so rebalancing
	// needs no extra persist barriers (paper §3.2, Figure 5).
	b, err := workload.FindBench("BT")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	_ = rng

	fmt.Println("running the B-tree benchmark under every Figure 8 variant...")
	fmt.Println()
	var base uint64
	fmt.Printf("%-10s %12s %10s %8s\n", "variant", "cycles", "instrs", "overhead")
	for _, v := range core.Variants() {
		r := workload.MustRun(b, workload.RunConfig{
			Variant: v,
			Scale:   0.01,
			Seed:    42,
		})
		if v == core.VariantBase {
			base = r.Stats.Cycles
		}
		fmt.Printf("%-10s %12d %10d %+7.1f%%\n",
			v.String(), r.Stats.Cycles, r.Stats.Committed,
			100*(float64(r.Stats.Cycles)/float64(base)-1))
	}
	fmt.Println()
	fmt.Println("Log      : undo-logging the full root-to-leaf path costs instructions.")
	fmt.Println("Log+P    : clwb/pcommit alone add little (no pipeline stalls).")
	fmt.Println("Log+P+Sf : the sfence-pcommit-sfence barriers stall the ROB head.")
	fmt.Println("SP       : checkpoints + the speculative store buffer hide those stalls;")
	fmt.Println("           the overhead collapses back to roughly the Log+P level.")

	// The same comparison on the red-black tree, SP vs the stall baseline.
	rt, _ := workload.FindBench("RT")
	sf := workload.MustRun(rt, workload.RunConfig{Variant: core.VariantLogPSf, Scale: 0.01, Seed: 42})
	sp := workload.MustRun(rt, workload.RunConfig{Variant: core.VariantSP, Scale: 0.01, Seed: 42})
	fmt.Println()
	fmt.Printf("red-black tree: SP speedup over the stalling baseline = %.2fx\n",
		float64(sf.Stats.Cycles)/float64(sp.Stats.Cycles))
	fmt.Printf("(SP used up to %d checkpoints and %d SSB entries; %d delayed PMEM ops)\n",
		sp.Stats.CheckpointsMaxUsed, sp.Stats.SSBMaxUsed, sp.Stats.DelayedPMEMOps)
}
