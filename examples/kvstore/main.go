// kvstore: a failure-safe key-value store on simulated NVMM, built on the
// persistent hash map with write-ahead-log transactions. The demo crashes
// the machine at a random point inside an update, runs recovery, and shows
// that the store is intact — then repeats it with an unfenced (Log+P)
// build to show why the sfences matter.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"specpersist/internal/core"
	"specpersist/internal/exec"
	"specpersist/internal/pmem"
	"specpersist/internal/pstruct"
	"specpersist/internal/txn"
)

type crashSignal struct{}

// store is a tiny KV facade over the persistent hash map.
type store struct {
	env *exec.Env
	mgr *txn.Manager
	hm  *pstruct.HashMap
}

func newStore(variant core.Variant, seed int64) *store {
	env := exec.New()
	env.Level = variant.Level()
	if variant == core.VariantLogP {
		// Model the persist reordering the missing fences would allow.
		env.Reorder = rand.New(rand.NewSource(seed))
	}
	mgr := txn.NewManager(env, 64)
	return &store{env: env, mgr: mgr, hm: pstruct.NewHashMap(env, mgr, 256)}
}

// toggle inserts the key if absent, deletes it if present — one
// failure-safe transaction.
func (s *store) toggle(key uint64) { s.hm.Apply(key) }

// crashDuring runs toggle but cuts power after n persistence events.
func (s *store) crashDuring(key uint64, n int) (crashed bool) {
	count := 0
	restore := s.env.WithHook(func() {
		if count >= n {
			panic(crashSignal{})
		}
		count++
	})
	defer func() {
		restore()
		if r := recover(); r != nil {
			if _, ok := r.(crashSignal); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	s.toggle(key)
	return false
}

func demo(variant core.Variant) (violations int) {
	fmt.Printf("--- %s build ---\n", variant)
	rng := rand.New(rand.NewSource(7))
	st := newStore(variant, 11)
	for k := uint64(0); k < 40; k++ {
		st.toggle(k)
	}
	st.env.M.PersistAll()
	fmt.Printf("populated store: %d keys, durable\n", st.hm.Size())

	trials, recovered := 0, 0
	for trial := 0; trial < 200; trial++ {
		key := uint64(rng.Intn(64))
		if !st.crashDuring(key, 1+rng.Intn(60)) {
			continue // operation completed before the crash point
		}
		trials++
		st.env.Crash(pmem.CrashOptions{EvictFrac: 0.3, DrainFrac: 0.5, Rand: rng})
		st.mgr.Recover()
		// The whole table must still be self-consistent after recovery:
		// counters, probe chains, stored values.
		if err := st.hm.Check(); err != nil {
			violations++
			fmt.Printf("store corrupted after %d crashes: %v\n", trials, err)
			break // a corrupted store cannot be used further
		}
		recovered++
	}
	fmt.Printf("%d crashes injected mid-transaction, %d consistent recoveries, %d corruptions\n\n",
		trials, recovered, violations)
	return violations
}

func main() {
	log.SetFlags(0)
	fmt.Println("kvstore: crash-consistent key-value store on NVMM")
	fmt.Println()
	if v := demo(core.VariantLogPSf); v != 0 {
		log.Fatalf("the fenced build must never corrupt (got %d violations)", v)
	}
	fmt.Println("The fenced (Log+P+Sf) build survived every crash.")
	fmt.Println()
	if v := demo(core.VariantLogP); v > 0 {
		fmt.Printf("The unfenced (Log+P) build corrupted %d times: without sfences the\n", v)
		fmt.Println("undo log and commit records can persist out of order (paper §2.2).")
	} else {
		fmt.Println("(no corruption observed this run; increase trials to see Log+P fail)")
	}
}
