// Quickstart: build a persistent linked list on simulated NVMM, run
// failure-safe transactional operations against it, simulate the same
// operations on the baseline pipeline and on Speculative Persistence
// hardware, and print the speedup.
package main

import (
	"fmt"
	"log"

	"specpersist/internal/core"
	"specpersist/internal/exec"
	"specpersist/internal/obs"
	"specpersist/internal/pstruct"
	"specpersist/internal/trace"
	"specpersist/internal/txn"
)

func main() {
	log.SetFlags(0)

	// 1. An execution environment over simulated non-volatile memory, at
	//    the fully fenced (failure-safe) persistence level.
	env := exec.New()
	env.Level = exec.LevelFull

	// 2. A write-ahead-log transaction manager and a persistent sorted
	//    linked list whose updates run through it.
	mgr := txn.NewManager(env, 64)
	list := pstruct.NewList(env, mgr)

	// 3. Record the instruction trace of 200 insert/delete operations
	//    (every load, store, clwb, pcommit and sfence the operations
	//    perform, with their data dependences).
	var tr trace.Buffer
	env.SetBuilder(trace.NewBuilder(&tr))
	for i := 0; i < 200; i++ {
		// Some application work per request (key derivation, validation,
		// serialization...) — the compute SP overlaps with persist
		// barriers.
		dep := env.Compute()
		for j := 0; j < 800; j++ {
			dep = env.Compute(dep)
		}
		list.Apply(uint64(i*37) % 256)
	}
	env.SetBuilder(nil)
	if err := list.Check(); err != nil {
		log.Fatalf("list invariants: %v", err)
	}
	fmt.Printf("list size after 200 transactional ops: %d nodes\n", list.Size())
	fmt.Printf("trace: %d instructions\n\n", tr.Len())

	// 4. Simulate the trace on the paper's Table 2 baseline, then on the
	//    same machine with Speculative Persistence (SP256).
	baseline := core.New(core.VariantLogPSf)
	tr.Rewind()
	st1 := baseline.Run(&tr)

	sp := core.New(core.VariantSP)
	tr.Rewind()
	st2 := sp.Run(&tr)

	fmt.Printf("baseline pipeline : %9d cycles (%d sfences stall the ROB head)\n", st1.Cycles, st1.Sfences)
	fmt.Printf("with SP256        : %9d cycles (%d speculation entries, %d epochs)\n",
		st2.Cycles, st2.SpecEntries, st2.SpecEpochs)
	fmt.Printf("speedup           : %.2fx — the sfence-pcommit-sfence latency is hidden\n",
		float64(st1.Cycles)/float64(st2.Cycles))

	// 5. Ask the unified metrics snapshot where the baseline's cycles went:
	//    the fence share is the latency SP hides.
	fmt.Printf("\n%s", obs.FormatStallReport(baseline.Metrics()))
}
