module specpersist

go 1.22
