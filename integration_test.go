package specpersist

import (
	"math/rand"
	"testing"

	"specpersist/internal/core"
	"specpersist/internal/exec"
	"specpersist/internal/isa"
	"specpersist/internal/pstruct"
	"specpersist/internal/trace"
	"specpersist/internal/txn"
	"specpersist/internal/workload"
)

// TestEndToEndFunctionalTimingConsistency runs a transactional workload
// once, capturing the trace, and cross-checks the two models: every
// instruction the functional layer emitted must commit in the timing
// model, and the persistence-instruction counts must agree between the
// functional persistence model, the trace, and the core's retirement
// statistics.
func TestEndToEndFunctionalTimingConsistency(t *testing.T) {
	env := exec.New()
	env.Level = exec.LevelFull
	mgr := txn.NewManager(env, 256)
	s := pstruct.NewHashMap(env, mgr, 64)
	env.M.PersistAll()
	env.M.ResetStats()

	var tr trace.Buffer
	var cnt trace.CountSink
	env.SetBuilder(trace.NewBuilder(trace.Tee{&tr, &cnt}))
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		s.Apply(uint64(rng.Intn(128)))
	}
	env.SetBuilder(nil)
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}

	fstats := env.M.Stats()
	// Functional model vs emitted trace.
	if cnt.Count(isa.Pcommit) != fstats.Pcommits {
		t.Errorf("trace pcommits %d != functional %d", cnt.Count(isa.Pcommit), fstats.Pcommits)
	}
	if cnt.Count(isa.Sfence) != fstats.Sfences {
		t.Errorf("trace sfences %d != functional %d", cnt.Count(isa.Sfence), fstats.Sfences)
	}
	if got := cnt.Count(isa.Clwb) + cnt.Count(isa.Clflushopt); got != fstats.Clwbs {
		t.Errorf("trace flushes %d != functional %d", got, fstats.Clwbs)
	}

	// Timing model vs emitted trace, for both hardware configurations.
	for _, v := range []core.Variant{core.VariantLogPSf, core.VariantSP} {
		sys := core.New(v)
		tr.Rewind()
		st := sys.Run(&tr)
		if st.Committed != uint64(tr.Len()) {
			t.Errorf("%v: committed %d of %d", v, st.Committed, tr.Len())
		}
		if st.Pcommits != fstats.Pcommits {
			t.Errorf("%v: retired pcommits %d != functional %d", v, st.Pcommits, fstats.Pcommits)
		}
		if st.Sfences != fstats.Sfences {
			t.Errorf("%v: retired sfences %d != functional %d", v, st.Sfences, fstats.Sfences)
		}
		if st.Clwbs+st.Clflushes != fstats.Clwbs {
			t.Errorf("%v: retired flushes %d != functional %d", v, st.Clwbs+st.Clflushes, fstats.Clwbs)
		}
	}
}

// TestEndToEndTransactionBarrierBudget verifies the paper's §3.1 cost
// accounting end to end: a workload of N non-resizing transactional
// updates issues exactly 4N pcommits and 8N sfences.
func TestEndToEndTransactionBarrierBudget(t *testing.T) {
	env := exec.New()
	env.Level = exec.LevelFull
	mgr := txn.NewManager(env, 64)
	l := pstruct.NewList(env, mgr)
	var cnt trace.CountSink
	env.SetBuilder(trace.NewBuilder(&cnt))
	const n = 100
	for i := 0; i < n; i++ {
		l.Apply(uint64(i))
	}
	if cnt.Count(isa.Pcommit) != 4*n {
		t.Errorf("pcommits = %d, want %d", cnt.Count(isa.Pcommit), 4*n)
	}
	if cnt.Count(isa.Sfence) != 8*n {
		t.Errorf("sfences = %d, want %d", cnt.Count(isa.Sfence), 8*n)
	}
}

// TestEndToEndDeterminism: the same seed yields bit-identical statistics.
func TestEndToEndDeterminism(t *testing.T) {
	b, err := workload.FindBench("BT")
	if err != nil {
		t.Fatal(err)
	}
	rc := workload.RunConfig{Variant: core.VariantSP, Scale: 0.002, Seed: 5, OpOverhead: 50}
	r1 := workload.MustRun(b, rc)
	r2 := workload.MustRun(b, rc)
	if r1.Stats != r2.Stats {
		t.Errorf("non-deterministic run:\n%+v\nvs\n%+v", r1.Stats, r2.Stats)
	}
}

// TestEndToEndMultiController runs a workload on a 2-controller system and
// checks pcommit semantics still hold (everything drains, work preserved).
func TestEndToEndMultiController(t *testing.T) {
	b, err := workload.FindBench("HM")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Controllers = 2
	rc := workload.RunConfig{Variant: core.VariantLogPSf, Scale: 0.002, Seed: 6, OpOverhead: 50, Options: &opts}
	r := workload.MustRun(b, rc)
	single := workload.MustRun(b, workload.RunConfig{Variant: core.VariantLogPSf, Scale: 0.002, Seed: 6, OpOverhead: 50})
	if r.Stats.Committed != single.Stats.Committed {
		t.Errorf("multi-controller committed %d != single %d", r.Stats.Committed, single.Stats.Committed)
	}
	if r.Stats.Pcommits != single.Stats.Pcommits {
		t.Errorf("multi-controller pcommits %d != single %d", r.Stats.Pcommits, single.Stats.Pcommits)
	}
	if r.Stats.Cycles == 0 {
		t.Error("empty multi-controller run")
	}
}

// TestEndToEndSPMatchesVariantSemantics: SP commits the same memory image
// as the stalling pipeline — the functional state after the run is
// identical because both consume the same trace; here we assert the
// *statistics invariants* that encode it.
func TestEndToEndSPStatsSane(t *testing.T) {
	b, _ := workload.FindBench("LL")
	r := workload.MustRun(b, workload.RunConfig{Variant: core.VariantSP, Scale: 0.005, Seed: 8, OpOverhead: 200})
	st := r.Stats
	if st.SpecEntries == 0 || st.SpecEpochs < st.SpecEntries {
		t.Errorf("speculation stats inconsistent: entries %d epochs %d", st.SpecEntries, st.SpecEpochs)
	}
	if st.CheckpointsMaxUsed > 4 {
		t.Errorf("checkpoints exceeded capacity: %d", st.CheckpointsMaxUsed)
	}
	if st.SSBMaxUsed > 256 {
		t.Errorf("SSB exceeded capacity: %d", st.SSBMaxUsed)
	}
	if st.BloomPositives > st.BloomQueries {
		t.Errorf("bloom positives %d > queries %d", st.BloomPositives, st.BloomQueries)
	}
	if st.BloomFalsePositives > st.BloomPositives {
		t.Errorf("bloom false positives %d > positives %d", st.BloomFalsePositives, st.BloomPositives)
	}
}
