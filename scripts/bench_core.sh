#!/usr/bin/env bash
# Measure the single-core simulator hot loop and append the result to
# BENCH_core.json, the checked-in perf trajectory. Run from anywhere:
#
#   scripts/bench_core.sh              # 3 iterations (default)
#   BENCHTIME=10x scripts/bench_core.sh
#
# CI runs this with BENCHTIME=1x as a smoke and as a perf gate: the
# benchmark must produce a parseable sim-instrs/s figure, the trajectory
# file must stay valid, and the fresh entry must not fall more than 20%
# below its predecessor (benchtrend -check fails the build otherwise).
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-3x}"
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
date=$(date -u +%Y-%m-%d)

out=$(go test -run '^$' -bench '^BenchmarkCoreInstrRate$' -benchtime "$benchtime" .)
printf '%s\n' "$out" >&2
printf '%s\n' "$out" |
  go run ./cmd/benchtrend -file BENCH_core.json -commit "$commit" -date "$date"
go run ./cmd/benchtrend -file BENCH_core.json -check
