#!/usr/bin/env bash
# Measure the simulator hot loops and append the results to
# BENCH_core.json, the checked-in perf trajectory: the single-core
# instruction rate, the replicated-fleet request rate (chaos fabric
# compiled in, disabled — the chaos-off overhead guard) and the versioned
# store's changeset-commit rate. Run from anywhere:
#
#   scripts/bench_core.sh              # 3 iterations (default)
#   BENCHTIME=10x scripts/bench_core.sh
#
# CI runs this with BENCHTIME=1x as a smoke and as a perf gate: each
# benchmark must produce a parseable rate figure, the trajectory file must
# stay valid, and no fresh entry may fall more than 20% below its
# predecessor (benchtrend -check fails the build otherwise).
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-3x}"
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
date=$(date -u +%Y-%m-%d)

out=$(go test -run '^$' -bench '^BenchmarkCoreInstrRate$' -benchtime "$benchtime" .)
printf '%s\n' "$out" >&2
printf '%s\n' "$out" |
  go run ./cmd/benchtrend -file BENCH_core.json -commit "$commit" -date "$date"

out=$(go test -run '^$' -bench '^BenchmarkClusterFleet$' -benchtime "$benchtime" .)
printf '%s\n' "$out" >&2
printf '%s\n' "$out" |
  go run ./cmd/benchtrend -file BENCH_core.json -metric sim-reqs/s -commit "$commit" -date "$date"

out=$(go test -run '^$' -bench '^BenchmarkVstoreCommit$' -benchtime "$benchtime" .)
printf '%s\n' "$out" >&2
printf '%s\n' "$out" |
  go run ./cmd/benchtrend -file BENCH_core.json -metric sim-commits/s -commit "$commit" -date "$date"

go run ./cmd/benchtrend -file BENCH_core.json -check
