package specpersist

import (
	"math/rand"
	"reflect"
	"testing"

	"specpersist/internal/core"
	"specpersist/internal/cpu"
	"specpersist/internal/exec"
	"specpersist/internal/isa"
	"specpersist/internal/mem"
	"specpersist/internal/multicore"
	"specpersist/internal/obs"
	"specpersist/internal/pstruct"
	"specpersist/internal/trace"
	"specpersist/internal/txn"
)

// These tests pin the scheduler redesign to the original algorithms: the
// CPU keeps its pre-rewrite stepping path behind SetReferenceStepping, and
// every run here must be byte-identical between the two — same Stats, same
// commit log (exact event order, not the canonicalized fault-harness
// comparison: both runs are the *same* machine, so even legal reorderings
// would be a divergence), same metric snapshot.

// materializeEquivTrace functionally executes a structure's operation
// stream and returns the traced measured phase plus the distinct store
// lines it touches (the conflict surface for forced rollbacks).
func materializeEquivTrace(t *testing.T, structure string, seed int64, warmup, ops int) (*trace.Buffer, []uint64) {
	t.Helper()
	buf := &trace.Buffer{}
	env := exec.New()
	env.Level = exec.LevelFull
	mgr := txn.NewManager(env, 2048)
	s := pstruct.Build(structure, env, mgr, pstruct.DefaultConfig())
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < warmup; i++ {
		s.Apply(rng.Uint64() % 512)
	}
	env.M.PersistAll()
	env.SetBuilder(trace.NewBuilder(buf))
	for i := 0; i < ops; i++ {
		s.Apply(rng.Uint64() % 512)
	}
	env.SetBuilder(nil)
	if err := s.Check(); err != nil {
		t.Fatalf("%s: structure check: %v", structure, err)
	}

	var lines []uint64
	seen := make(map[uint64]bool)
	for _, in := range buf.Instrs() {
		if in.Op == isa.Store {
			if l := mem.LineAddr(in.Addr); !seen[l] {
				seen[l] = true
				lines = append(lines, l)
			}
		}
	}
	return buf, lines
}

// runEquiv replays buf on a fresh system, optionally under the reference
// scheduler, and returns everything observable about the run.
func runEquiv(v core.Variant, buf *trace.Buffer, ref bool) (cpu.Stats, []cpu.CommitEvent, obs.Snapshot) {
	sys := core.New(v)
	sys.CPU.SetReferenceStepping(ref)
	sys.CPU.EnableCommitLog()
	buf.Rewind()
	st := sys.Run(buf)
	return st, sys.CPU.CommitLog(), sys.Metrics()
}

func compareRuns(t *testing.T, label string, v core.Variant, buf *trace.Buffer) {
	t.Helper()
	fastSt, fastLog, fastM := runEquiv(v, buf, false)
	refSt, refLog, refM := runEquiv(v, buf, true)
	if fastSt != refSt {
		t.Errorf("%s/%v: stats diverge:\nfast %+v\nref  %+v", label, v, fastSt, refSt)
	}
	if !reflect.DeepEqual(fastLog, refLog) {
		t.Errorf("%s/%v: commit logs diverge (fast %d events, ref %d)", label, v, len(fastLog), len(refLog))
	}
	if !reflect.DeepEqual(fastM, refM) {
		t.Errorf("%s/%v: metric snapshots diverge", label, v)
	}
}

// TestSteppingEquivalenceStructures replays every Table 1 structure's trace
// under the stalling and speculative machines in both stepping modes.
func TestSteppingEquivalenceStructures(t *testing.T) {
	for _, name := range pstruct.Names() {
		buf, _ := materializeEquivTrace(t, name, 41, 64, 24)
		for _, v := range []core.Variant{core.VariantLogPSf, core.VariantSP} {
			compareRuns(t, name, v, buf)
		}
	}
}

// TestSteppingEquivalenceForcedRollback forces a coherence-probe rollback
// mid-speculation (the §4.2.2 squash path exercises the scheduler's full
// state reset) and requires both modes to roll back and converge.
func TestSteppingEquivalenceForcedRollback(t *testing.T) {
	buf, lines := materializeEquivTrace(t, "HM", 17, 64, 16)
	run := func(ref bool) (cpu.Stats, []cpu.CommitEvent, obs.Snapshot) {
		sys := core.New(core.VariantSP)
		sys.CPU.SetReferenceStepping(ref)
		sys.CPU.EnableCommitLog()
		rolled := false
		sys.CPU.OnCycle(func(c *cpu.CPU) {
			if rolled {
				return
			}
			for _, a := range lines {
				if c.CoherenceProbe(a) {
					rolled = true
					return
				}
			}
		})
		buf.Rewind()
		st := sys.Run(buf)
		return st, sys.CPU.CommitLog(), sys.Metrics()
	}
	fastSt, fastLog, fastM := run(false)
	refSt, refLog, refM := run(true)
	if fastSt.Rollbacks == 0 || refSt.Rollbacks == 0 {
		t.Fatalf("no rollback triggered: fast %d, ref %d", fastSt.Rollbacks, refSt.Rollbacks)
	}
	if fastSt != refSt {
		t.Errorf("rollback stats diverge:\nfast %+v\nref  %+v", fastSt, refSt)
	}
	if !reflect.DeepEqual(fastLog, refLog) {
		t.Errorf("rollback commit logs diverge (fast %d events, ref %d)", len(fastLog), len(refLog))
	}
	if !reflect.DeepEqual(fastM, refM) {
		t.Errorf("rollback metric snapshots diverge")
	}
}

// TestSteppingEquivalenceMulticore runs the 2-core conflict engine — a
// speculating workload core under fire from an adversary core storing to
// its lines, the same shape as the fault harness's real-probe differential
// — in both modes and requires identical machine-wide outcomes, including
// the probe/NACK/rollback counters.
func TestSteppingEquivalenceMulticore(t *testing.T) {
	buf, lines := materializeEquivTrace(t, "LL", 23, 32, 12)
	mkAdversary := func(cycles uint64) *trace.Buffer {
		adv := &trace.Buffer{}
		bld := trace.NewBuilder(adv)
		perRound := uint64(64 * (len(lines) + 1))
		rounds := int(2*cycles/perRound) + 2
		for r := 0; r < rounds; r++ {
			for _, line := range lines {
				v := bld.ALU(0)
				for i := 0; i < 63; i++ {
					v = bld.ALU(0, v)
				}
				bld.Store(line, 8, v, isa.NoReg)
			}
		}
		return adv
	}
	// Size the adversary from a solo SP run of the workload trace.
	solo, _, _ := runEquiv(core.VariantSP, buf, false)

	run := func(ref bool) (multicore.Stats, []cpu.CommitEvent, obs.Snapshot) {
		cfg := multicore.DefaultConfig()
		cfg.Cores = 2
		sim := multicore.New(cfg)
		for i := 0; i < cfg.Cores; i++ {
			sim.Core(i).SetReferenceStepping(ref)
		}
		sim.Core(0).EnableCommitLog()
		buf.Rewind()
		st := sim.Run([]trace.Source{buf, mkAdversary(solo.Cycles)})
		return st, sim.Core(0).CommitLog(), sim.Metrics()
	}
	fastSt, fastLog, fastM := run(false)
	refSt, refLog, refM := run(true)
	if fastSt.Conflicts == 0 || fastSt.Rollbacks == 0 {
		t.Fatalf("adversary produced no conflicts (probes %d, conflicts %d, rollbacks %d)",
			fastSt.Probes, fastSt.Conflicts, fastSt.Rollbacks)
	}
	if !reflect.DeepEqual(fastSt, refSt) {
		t.Errorf("multicore stats diverge:\nfast %+v\nref  %+v", fastSt, refSt)
	}
	if !reflect.DeepEqual(fastLog, refLog) {
		t.Errorf("multicore commit logs diverge (fast %d events, ref %d)", len(fastLog), len(refLog))
	}
	if !reflect.DeepEqual(fastM, refM) {
		t.Errorf("multicore metric snapshots diverge")
	}
}
